(* The Parallel pool and the determinism contract of Engine.replicate:
   aggregates must be bit-identical for every jobs count because the
   per-run RNGs are split from the master seed sequentially, before any
   fan-out. *)

open Crowdmax_util
module E = Crowdmax_runtime.Engine
module S = Crowdmax_selection.Selection
module Model = Crowdmax_latency.Model
module Problem = Crowdmax_core.Problem
module Tdp = Crowdmax_core.Tdp

let tc = Alcotest.test_case
let check_bool = Alcotest.check Alcotest.bool
let check_int = Alcotest.check Alcotest.int

(* --- the pool itself ---------------------------------------------------- *)

let test_map_matches_sequential () =
  Parallel.with_pool ~jobs:4 (fun pool ->
      List.iter
        (fun n ->
          let arr = Array.init n (fun i -> i) in
          let expect = Array.map (fun i -> (i * i) + 1) arr in
          let got = Parallel.map pool (fun i -> (i * i) + 1) arr in
          Alcotest.check
            Alcotest.(array int)
            (Printf.sprintf "map n=%d" n)
            expect got)
        [ 0; 1; 2; 3; 4; 5; 7; 8; 100; 1000 ])

let test_init_matches_sequential () =
  Parallel.with_pool ~jobs:3 (fun pool ->
      List.iter
        (fun n ->
          Alcotest.check
            Alcotest.(array int)
            (Printf.sprintf "init n=%d" n)
            (Array.init n (fun i -> 3 * i))
            (Parallel.init pool n (fun i -> 3 * i)))
        [ 0; 1; 2; 3; 6; 97 ])

let test_pool_reuse () =
  (* Many calls through one pool: the queue must drain cleanly each
     time, including calls smaller than the worker count. *)
  Parallel.with_pool ~jobs:4 (fun pool ->
      for round = 1 to 50 do
        let n = 1 + (round mod 7) in
        let got = Parallel.init pool n (fun i -> i + round) in
        Alcotest.check
          Alcotest.(array int)
          "reuse round"
          (Array.init n (fun i -> i + round))
          got
      done)

let test_jobs_one_runs_inline () =
  let pool = Parallel.create ~jobs:1 in
  check_int "jobs clamped" 1 (Parallel.jobs pool);
  let got = Parallel.map pool (fun i -> i * 2) (Array.init 10 (fun i -> i)) in
  Alcotest.check Alcotest.(array int) "inline map"
    (Array.init 10 (fun i -> i * 2))
    got;
  Parallel.shutdown pool;
  (* shutdown is idempotent *)
  Parallel.shutdown pool

let test_jobs_clamped_to_one () =
  Parallel.with_pool ~jobs:0 (fun pool ->
      check_int "0 -> 1" 1 (Parallel.jobs pool));
  Parallel.with_pool ~jobs:(-3) (fun pool ->
      check_int "-3 -> 1" 1 (Parallel.jobs pool))

let test_absurd_jobs_rejected () =
  Alcotest.check_raises "guard"
    (Invalid_argument "Parallel.create: jobs = 1000 exceeds the cap of 128")
    (fun () -> ignore (Parallel.create ~jobs:1000))

exception Boom of int

let test_exception_propagates () =
  Parallel.with_pool ~jobs:4 (fun pool ->
      (match
         Parallel.init pool 100 (fun i -> if i = 57 then raise (Boom i) else i)
       with
      | _ -> Alcotest.fail "exception swallowed"
      | exception Boom 57 -> ());
      (* the pool must still be usable after a failed call *)
      Alcotest.check
        Alcotest.(array int)
        "pool survives"
        (Array.init 8 (fun i -> i))
        (Parallel.init pool 8 (fun i -> i)))

let test_recommended_jobs_positive () =
  check_bool "positive" true (Parallel.recommended_jobs () >= 1)

(* --- determinism of the replicated engine ------------------------------- *)

let model = Model.paper_mturk

let replicate ~jobs ~runs ~seed ~elements ~budget ~selection =
  let sol =
    Tdp.solve (Problem.create ~elements ~budget ~latency:model)
  in
  let cfg =
    E.config ~allocation:sol.Tdp.allocation ~selection ~latency_model:model ()
  in
  E.replicate ~jobs ~runs ~seed cfg ~elements

let test_replicate_bit_identical () =
  (* The acceptance gate: jobs in {1, 2, 4} must agree bit-for-bit
     (timing aside) across several seeds, sizes, and selectors. *)
  List.iter
    (fun (seed, elements, budget, selection, runs) ->
      let base = replicate ~jobs:1 ~runs ~seed ~elements ~budget ~selection in
      List.iter
        (fun jobs ->
          let agg = replicate ~jobs ~runs ~seed ~elements ~budget ~selection in
          check_bool
            (Printf.sprintf "seed=%d c0=%d b=%d jobs=%d" seed elements budget
               jobs)
            true (E.equal_stats base agg);
          check_int "timing records the fan-out" jobs agg.E.timing.E.jobs)
        [ 2; 4 ])
    [
      (1, 40, 200, S.tournament, 16);
      (42, 25, 120, S.tournament, 10);
      (7, 30, 300, S.ct25, 12);
      (13, 50, 250, S.spread, 8);
      (99, 12, 60, S.greedy, 9);
    ]

let test_replicate_runs_not_multiple_of_jobs () =
  (* Chunking must not care whether runs divides evenly. *)
  List.iter
    (fun runs ->
      let base =
        replicate ~jobs:1 ~runs ~seed:5 ~elements:20 ~budget:100
          ~selection:S.tournament
      in
      List.iter
        (fun jobs ->
          let agg =
            replicate ~jobs ~runs ~seed:5 ~elements:20 ~budget:100
              ~selection:S.tournament
          in
          check_bool
            (Printf.sprintf "runs=%d jobs=%d" runs jobs)
            true (E.equal_stats base agg))
        [ 2; 3; 4; 5 ])
    [ 1; 2; 3; 5; 7 ]

let test_timing_populated () =
  let agg =
    replicate ~jobs:2 ~runs:6 ~seed:3 ~elements:15 ~budget:80
      ~selection:S.tournament
  in
  check_bool "wall clock non-negative" true (agg.E.timing.E.wall_seconds >= 0.0);
  check_bool "throughput positive" true (agg.E.timing.E.runs_per_sec > 0.0)

let suite =
  [
    ( "parallel",
      [
        tc "map matches sequential" `Quick test_map_matches_sequential;
        tc "init matches sequential" `Quick test_init_matches_sequential;
        tc "pool reuse" `Quick test_pool_reuse;
        tc "jobs=1 runs inline" `Quick test_jobs_one_runs_inline;
        tc "jobs clamped to one" `Quick test_jobs_clamped_to_one;
        tc "absurd jobs rejected" `Quick test_absurd_jobs_rejected;
        tc "exception propagates" `Quick test_exception_propagates;
        tc "recommended jobs" `Quick test_recommended_jobs_positive;
        tc "replicate bit-identical across jobs" `Quick
          test_replicate_bit_identical;
        tc "replicate uneven chunks" `Quick
          test_replicate_runs_not_multiple_of_jobs;
        tc "timing populated" `Quick test_timing_populated;
      ] );
  ]
