module Sort = Crowdmax_sort.Sort
module Model = Crowdmax_latency.Model
module G = Crowdmax_crowd.Ground_truth
module Ints = Crowdmax_util.Ints
module Rng = Crowdmax_util.Rng

let tc = Alcotest.test_case
let check_int = Alcotest.check Alcotest.int
let check_bool = Alcotest.check Alcotest.bool

let model = Model.linear ~delta:30.0 ~alpha:0.5

let run ?(seed = 3) strategy n =
  let rng = Rng.create seed in
  let truth = G.random rng n in
  (Sort.run rng ~strategy ~latency:model truth, truth)

let test_all_strategies_sort_correctly () =
  let rng = Rng.create 5 in
  List.iter
    (fun strategy ->
      for _ = 1 to 15 do
        let n = 1 + Rng.int rng 40 in
        let seed = Rng.int rng 100000 in
        let r, truth = run ~seed strategy n in
        check_bool (Sort.strategy_name strategy ^ " sorts") true r.Sort.correct;
        Alcotest.check
          Alcotest.(array int)
          "order matches truth" (G.sorted_desc truth) r.Sort.order
      done)
    [ Sort.All_pairs; Sort.Odd_even; Sort.Odd_even_skip ]

let test_all_pairs_single_round () =
  let r, _ = run Sort.All_pairs 20 in
  check_int "one round" 1 r.Sort.rounds_run;
  check_int "choose2 questions" (Ints.choose2 20) r.Sort.questions_posted

let test_odd_even_round_structure () =
  let r, _ = run Sort.Odd_even 16 in
  check_bool "multiple rounds" true (r.Sort.rounds_run > 1);
  check_bool "at most n+2 rounds" true (r.Sort.rounds_run <= 18);
  (* each round's comparisons are disjoint adjacent pairs: at most n/2 *)
  List.iter
    (fun q -> check_bool "round size bounded" true (q >= 1 && q <= 8))
    r.Sort.round_questions;
  check_int "rounds consistent" r.Sort.rounds_run
    (List.length r.Sort.round_questions)

let test_skip_same_final_order () =
  (* implied answers equal real answers (error-free), so skipping never
     changes the swap decisions - identical final orders *)
  let rng = Rng.create 17 in
  for _ = 1 to 15 do
    let n = 2 + Rng.int rng 30 in
    let seed = Rng.int rng 100000 in
    let plain, _ = run ~seed Sort.Odd_even n in
    let skip, _ = run ~seed Sort.Odd_even_skip n in
    Alcotest.check Alcotest.(array int) "same order" plain.Sort.order
      skip.Sort.order
  done

let test_skip_never_asks_more () =
  let rng = Rng.create 7 in
  for _ = 1 to 20 do
    let n = 2 + Rng.int rng 35 in
    let seed = Rng.int rng 100000 in
    let plain, _ = run ~seed Sort.Odd_even n in
    let skip, _ = run ~seed Sort.Odd_even_skip n in
    check_bool "skip asks no more questions" true
      (skip.Sort.questions_posted <= plain.Sort.questions_posted);
    check_bool "both correct" true (plain.Sort.correct && skip.Sort.correct)
  done

let test_presorted_exits_fast () =
  let truth = G.of_ranks (Array.init 30 (fun i -> 29 - i)) in
  (* element 0 is the best: the initial order [0..29] is already sorted *)
  let rng = Rng.create 9 in
  let r = Sort.run rng ~strategy:Sort.Odd_even ~latency:model truth in
  check_bool "two swapless passes" true (r.Sort.rounds_run <= 2);
  check_bool "correct" true r.Sort.correct

let test_single_element () =
  let r, _ = run Sort.Odd_even 1 in
  check_bool "correct" true r.Sort.correct;
  check_int "no questions" 0 r.Sort.questions_posted;
  Alcotest.check (Alcotest.float 1e-9) "no latency" 0.0 r.Sort.total_latency

let test_cost_latency_tradeoff () =
  (* the paper's tradeoff, on SORT: all-pairs posts far more questions
     than skipping odd-even, but needs far fewer rounds *)
  let ap, _ = run Sort.All_pairs 30 in
  let oe, _ = run Sort.Odd_even 30 in
  let sk, _ = run Sort.Odd_even_skip 30 in
  check_bool "all-pairs more questions than skipping" true
    (ap.Sort.questions_posted > sk.Sort.questions_posted);
  check_bool "all-pairs fewer rounds" true (ap.Sort.rounds_run < oe.Sort.rounds_run);
  (* under an overhead-heavy latency model all-pairs wins; under a
     per-question-heavy one the skipping odd-even wins *)
  let overhead_heavy = Model.linear ~delta:500.0 ~alpha:0.01 in
  let question_heavy = Model.linear ~delta:1.0 ~alpha:10.0 in
  let latency_of m strategy =
    let rng = Rng.create 11 in
    let truth = G.random rng 30 in
    (Sort.run rng ~strategy ~latency:m truth).Sort.total_latency
  in
  check_bool "overhead-heavy favours all-pairs" true
    (latency_of overhead_heavy Sort.All_pairs
    < latency_of overhead_heavy Sort.Odd_even);
  check_bool "question-heavy favours skipping odd-even" true
    (latency_of question_heavy Sort.Odd_even_skip
    < latency_of question_heavy Sort.All_pairs)

let test_max_questions () =
  check_int "skip bound is choose2" (Ints.choose2 12)
    (Sort.max_questions Sort.Odd_even_skip 12);
  check_int "plain odd-even bound" (13 * 6) (Sort.max_questions Sort.Odd_even 12);
  let rng = Rng.create 13 in
  for _ = 1 to 10 do
    let n = 2 + Rng.int rng 30 in
    let seed = Rng.int rng 100000 in
    List.iter
      (fun strategy ->
        let r, _ = run ~seed strategy n in
        check_bool "within bound" true
          (r.Sort.questions_posted <= Sort.max_questions strategy n))
      [ Sort.All_pairs; Sort.Odd_even; Sort.Odd_even_skip ]
  done

let suite =
  [
    ( "sort",
      [
        tc "all strategies sort" `Quick test_all_strategies_sort_correctly;
        tc "all-pairs single round" `Quick test_all_pairs_single_round;
        tc "odd-even round structure" `Quick test_odd_even_round_structure;
        tc "skip same final order" `Quick test_skip_same_final_order;
        tc "skip never asks more" `Quick test_skip_never_asks_more;
        tc "pre-sorted exits fast" `Quick test_presorted_exits_fast;
        tc "single element" `Quick test_single_element;
        tc "cost-latency tradeoff" `Quick test_cost_latency_tradeoff;
        tc "max questions bound" `Quick test_max_questions;
      ] );
  ]
