(* Property-based tests (qcheck) for the core invariants:

   - Q-function identities and bounds (Defs. 1-2)
   - tDP optimality vs brute force, budget safety, sequence shape
   - Theorem 2 (maxRC = maxIND) on random graphs
   - Lemma 4 (E[R] formula) vs direct enumeration over orientations
   - tournament selection -> singleton termination with the true MAX
   - RWL conflict-freedom under adversarial error rates
   - scoring conservation on random answer DAGs *)

module Q = QCheck
module T = Crowdmax_tournament.Tournament
module U = Crowdmax_graph.Undirected
module MI = Crowdmax_graph.Max_ind
module Dag = Crowdmax_graph.Answer_dag
module Scoring = Crowdmax_graph.Scoring
module ERC = Crowdmax_graph.Expected_rc
module Model = Crowdmax_latency.Model
module Problem = Crowdmax_core.Problem
module Tdp = Crowdmax_core.Tdp
module Allocation = Crowdmax_core.Allocation
module S = Crowdmax_selection.Selection
module E = Crowdmax_runtime.Engine
module G = Crowdmax_crowd.Ground_truth
module Rwl = Crowdmax_crowd.Rwl
module W = Crowdmax_crowd.Worker
module Ints = Crowdmax_util.Ints
module Rng = Crowdmax_util.Rng

let count = 100

(* --- generators --------------------------------------------------------- *)

let pair_c_cnext =
  Q.make
    ~print:(fun (c, c') -> Printf.sprintf "(c=%d, c'=%d)" c c')
    Q.Gen.(
      int_range 1 200 >>= fun c ->
      int_range 1 c >>= fun c' -> return (c, c'))

let instance =
  (* (c0, slack): budget = c0 - 1 + slack *)
  Q.make
    ~print:(fun (c0, s) -> Printf.sprintf "(c0=%d, slack=%d)" c0 s)
    Q.Gen.(
      int_range 2 40 >>= fun c0 ->
      int_range 0 300 >>= fun s -> return (c0, s))

let small_instance =
  Q.make
    ~print:(fun (c0, s) -> Printf.sprintf "(c0=%d, slack=%d)" c0 s)
    Q.Gen.(
      int_range 2 9 >>= fun c0 ->
      int_range 0 40 >>= fun s -> return (c0, s))

let random_graph_gen nmax density =
  Q.Gen.(
    int_range 2 nmax >>= fun n ->
    int_range 0 1000 >>= fun seed ->
    return
      (let rng = Rng.create (seed * 7919) in
       let g = U.create n in
       for i = 0 to n - 1 do
         for j = i + 1 to n - 1 do
           if Rng.bernoulli rng density then U.add_edge g i j
         done
       done;
       g))

let graph_print g =
  Printf.sprintf "graph(n=%d, edges=%s)" (U.size g)
    (String.concat ";"
       (List.map (fun (a, b) -> Printf.sprintf "%d-%d" a b) (U.edges g)))

let small_graph = Q.make ~print:graph_print (random_graph_gen 7 0.5)
let medium_graph = Q.make ~print:graph_print (random_graph_gen 20 0.3)

let model = Model.linear ~delta:100.0 ~alpha:1.0

(* --- properties --------------------------------------------------------- *)

let prop_q_function_bounds =
  Q.Test.make ~name:"Q(c,c') within [c-c', choose2 c] and consistent" ~count
    pair_c_cnext (fun (c, c') ->
      let q = T.questions c c' in
      (* every tournament eliminates its clique size - 1 elements *)
      q >= c - c' && q <= Ints.choose2 c)

let prop_q_decreasing =
  Q.Test.make ~name:"Q(c, .) weakly decreasing in group count" ~count
    pair_c_cnext (fun (c, c') ->
      c' >= c || T.questions c c' >= T.questions c (c' + 1))

let prop_sizes_partition =
  Q.Test.make ~name:"tournament sizes partition the candidates" ~count
    pair_c_cnext (fun (c, c') ->
      let sizes = T.sizes c c' in
      Ints.sum sizes = c
      && List.length sizes = c'
      && List.for_all (fun s -> s >= 1) sizes)

let prop_tdp_beats_brute_force =
  Q.Test.make ~name:"tDP matches brute-force optimum" ~count:60 small_instance
    (fun (c0, s) ->
      let p = Problem.create ~elements:c0 ~budget:(c0 - 1 + s) ~latency:model in
      let dp = Tdp.solve p and bf = Tdp.brute_force p in
      Float.abs (dp.Tdp.latency -. bf.Tdp.latency) < 1e-9)

let prop_tdp_within_budget =
  Q.Test.make ~name:"tDP stays within budget and ends at 1" ~count instance
    (fun (c0, s) ->
      let b = c0 - 1 + s in
      let sol = Tdp.solve (Problem.create ~elements:c0 ~budget:b ~latency:model) in
      sol.Tdp.questions_used <= b
      && List.nth sol.Tdp.sequence (List.length sol.Tdp.sequence - 1) = 1
      && List.hd sol.Tdp.sequence = c0)

let prop_tdp_beats_heuristics =
  Q.Test.make ~name:"tDP latency <= every heuristic's predicted latency"
    ~count instance (fun (c0, s) ->
      let b = c0 - 1 + s in
      let sol = Tdp.solve (Problem.create ~elements:c0 ~budget:b ~latency:model) in
      List.for_all
        (fun Crowdmax_core.Heuristics.{ allocate; _ } ->
          let a = allocate ~elements:c0 ~budget:b in
          (* heuristic vectors are question counts, not tournament
             sequences; their predicted latency assumes all rounds run,
             which is what the paper plots *)
          Allocation.predicted_latency a model >= sol.Tdp.latency -. 1e-9)
        Crowdmax_core.Heuristics.all)

let prop_theorem3_edge_bound =
  (* Theorem 3 (via Berge/Turán): any graph on c nodes whose maximum
     independent set has size k needs at least Q(c, k) edges - the
     tournament graph is edge-minimal for its worst case *)
  Q.Test.make ~name:"Theorem 3: |E| >= Q(|V|, |maxIND|)" ~count:60 medium_graph
    (fun g ->
      let k = List.length (MI.exact g) in
      U.edge_count g >= T.questions (U.size g) k)

let prop_adaptive_matches_static_on_tournaments =
  (* With pure tournament rounds (which never over-eliminate when the
     plan's budgets are hit exactly), re-planning after each round must
     reproduce the static tDP latency: the DP's suffixes are optimal. *)
  Q.Test.make ~name:"adaptive tDP = static tDP under exact tournaments"
    ~count:40 instance (fun (c0, s) ->
      let b = c0 - 1 + s in
      let problem = Problem.create ~elements:c0 ~budget:b ~latency:model in
      let static = Tdp.solve problem in
      let rng = Rng.create ((c0 * 31) + s) in
      let truth = G.random rng c0 in
      let r =
        Crowdmax_runtime.Adaptive.run rng ~problem ~selection:S.tournament truth
      in
      r.Crowdmax_runtime.Adaptive.engine_result.E.correct
      && r.Crowdmax_runtime.Adaptive.engine_result.E.total_latency
         <= static.Tdp.latency +. 1e-6)

let prop_maxrc_equals_maxind =
  Q.Test.make ~name:"Theorem 2: |maxRC| = |maxIND|" ~count:40 small_graph
    (fun g ->
      List.length (MI.exact g) = List.length (MI.max_rc_brute g))

let prop_greedy_below_exact =
  Q.Test.make ~name:"greedy IND set never beats exact" ~count medium_graph
    (fun g -> List.length (MI.greedy g) <= List.length (MI.exact g))

let prop_expected_rc_formula =
  (* Lemma 4 over exhaustive orientations: average |RC| over all n!
     ground truths equals sum 1/(d_v + 1) *)
  Q.Test.make ~name:"Lemma 4: E[R] = sum 1/(d_v+1)" ~count:30 small_graph
    (fun g ->
      let n = U.size g in
      let total = ref 0 in
      let perms = ref 0 in
      let a = Array.init n (fun i -> i) in
      let rec permute k =
        if k = 1 then begin
          let rank = Array.make n 0 in
          Array.iteri (fun pos v -> rank.(v) <- pos) a;
          total := !total + List.length (U.remaining_after g rank);
          incr perms
        end
        else
          for i = 0 to k - 1 do
            permute (k - 1);
            let j = if k mod 2 = 0 then i else 0 in
            let tmp = a.(j) in
            a.(j) <- a.(k - 1);
            a.(k - 1) <- tmp
          done
      in
      permute n;
      let avg = float_of_int !total /. float_of_int !perms in
      Float.abs (avg -. ERC.closed_form g) < 1e-9)

let prop_tournament_minimizes_expected_rc =
  (* Theorem 5: among equal-edge-count graphs, the tournament graph's
     E[R] attains the near-regular lower bound *)
  Q.Test.make ~name:"Theorem 5: tournament graph attains E[R] bound" ~count:50
    pair_c_cnext (fun (c, c') ->
      let rng = Rng.create (c * 131 + c') in
      let a = T.assign rng (Array.init c (fun i -> i)) c' in
      let g = T.to_undirected c a in
      ERC.closed_form g
      <= ERC.lower_bound ~nodes:c ~edges:(U.edge_count g) +. 1e-9)

let prop_scoring_conserves_energy =
  Q.Test.make ~name:"Algorithm 2 conserves energy onto candidates" ~count
    (Q.make ~print:(fun s -> Printf.sprintf "seed=%d" s) Q.Gen.(int_range 0 100000))
    (fun seed ->
      let rng = Rng.create seed in
      let n = 2 + Rng.int rng 30 in
      let truth = Rng.permutation rng n in
      let dag = Dag.create n in
      for _ = 1 to Rng.int rng (3 * n) do
        let a = Rng.int rng n and b = Rng.int rng n in
        if a <> b then begin
          let w, l = if truth.(a) > truth.(b) then (a, b) else (b, a) in
          Dag.add_answer dag ~winner:w ~loser:l
        end
      done;
      let s = Scoring.scores_array dag in
      let candidates = Dag.remaining_candidates dag in
      let total = Array.fold_left ( +. ) 0.0 s in
      let on_candidates =
        List.fold_left (fun acc c -> acc +. s.(c)) 0.0 candidates
      in
      Float.abs (total -. 1.0) < 1e-9 && Float.abs (on_candidates -. 1.0) < 1e-9)

let prop_tournament_selection_singleton =
  (* tDP + tournament formation always reaches the true MAX with
     singleton termination under error-free workers *)
  Q.Test.make ~name:"tDP+Tournament: singleton + correct (error-free)"
    ~count:60 instance (fun (c0, s) ->
      let b = c0 - 1 + s in
      let sol = Tdp.solve (Problem.create ~elements:c0 ~budget:b ~latency:model) in
      let rng = Rng.create ((c0 * 7919) + s) in
      let truth = G.random rng c0 in
      let cfg =
        E.config ~allocation:sol.Tdp.allocation ~selection:S.tournament
          ~latency_model:model ()
      in
      let r = E.run rng cfg truth in
      r.E.singleton && r.E.correct)

let prop_heuristics_singleton_under_tournament =
  (* HE and HF schedule at least a halving round's worth of questions
     against the worst-case candidate count of every round, so under
     tournament selection they always reach a singleton. The uniform
     variants do NOT guarantee this at tight budgets (paper Sec. 6.8,
     finding 4) - for them we only require a correct result whenever a
     singleton was reached. *)
  Q.Test.make ~name:"heuristics+Tournament termination contract" ~count:40
    instance (fun (c0, s) ->
      let b = c0 - 1 + s in
      let rng = Rng.create ((c0 * 104729) + s) in
      let run allocate =
        let truth = G.random rng c0 in
        let cfg =
          E.config ~allocation:(allocate ~elements:c0 ~budget:b)
            ~selection:S.tournament ~latency_model:model ()
        in
        (E.run rng cfg truth, truth)
      in
      let guaranteed =
        List.for_all
          (fun allocate ->
            let r, _ = run allocate in
            r.E.singleton && r.E.correct)
          [ Crowdmax_core.Heuristics.he; Crowdmax_core.Heuristics.hf ]
      in
      let best_effort =
        List.for_all
          (fun allocate ->
            let r, truth = run allocate in
            (not r.E.singleton) || r.E.chosen = G.max_element truth)
          [ Crowdmax_core.Heuristics.uhe; Crowdmax_core.Heuristics.uhf ]
      in
      guaranteed && best_effort)

let prop_rwl_always_conflict_free =
  Q.Test.make ~name:"RWL output acyclic for any error rate" ~count:60
    (Q.make
       ~print:(fun (s, e) -> Printf.sprintf "seed=%d err=%.2f" s e)
       Q.Gen.(
         int_range 0 10000 >>= fun s ->
         float_range 0.0 1.0 >>= fun e -> return (s, e)))
    (fun (seed, err) ->
      let rng = Rng.create seed in
      let n = 3 + Rng.int rng 10 in
      let truth = G.random rng n in
      let questions = ref [] in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          if Rng.bernoulli rng 0.7 then questions := (i, j) :: !questions
        done
      done;
      let o =
        Rwl.resolve rng { Rwl.votes = 1; error = W.Uniform err } ~truth !questions
      in
      Rwl.is_conflict_free ~n o.Rwl.answers
      && List.length o.Rwl.answers = List.length !questions)

let prop_topk_prefix_consistency =
  (* exact top-k runs agree on prefixes: the first k1 entries of an
     exact top-k2 ranking (k2 > k1) equal the exact top-k1 ranking -
     both are the true order's head *)
  Q.Test.make ~name:"top-k prefix consistency" ~count:30
    (Q.make
       ~print:(fun (s, n) -> Printf.sprintf "seed=%d n=%d" s n)
       Q.Gen.(
         int_range 0 10000 >>= fun s ->
         int_range 6 40 >>= fun n -> return (s, n)))
    (fun (seed, n) ->
      let budget = 10 * n in
      let problem = Problem.create ~elements:n ~budget ~latency:model in
      let truth = G.random (Rng.create seed) n in
      let run k =
        Crowdmax_topk.Topk.run (Rng.create (seed + k)) ~k ~problem
          ~selection:S.tournament truth
      in
      let r2 = run 2 and r5 = run 5 in
      (not (r2.Crowdmax_topk.Topk.exact && r5.Crowdmax_topk.Topk.exact))
      || (let rec prefix a b =
            match (a, b) with
            | [], _ -> true
            | x :: xs, y :: ys -> x = y && prefix xs ys
            | _ -> false
          in
          prefix r2.Crowdmax_topk.Topk.ranking r5.Crowdmax_topk.Topk.ranking))

let prop_cost_frontier_pareto =
  (* no frontier point dominates another *)
  Q.Test.make ~name:"cost frontier is Pareto-optimal" ~count:30
    (Q.make
       ~print:(fun n -> Printf.sprintf "c0=%d" n)
       Q.Gen.(int_range 5 80))
    (fun c0 ->
      let budgets = [ c0 - 1; 2 * c0; 4 * c0; 8 * c0; 16 * c0 ] in
      let pts =
        Crowdmax_core.Cost.frontier ~latency:model ~elements:c0 ~budgets ()
      in
      List.for_all
        (fun a ->
          List.for_all
            (fun b ->
              a == b
              || not
                   (b.Crowdmax_core.Cost.dollars <= a.Crowdmax_core.Cost.dollars
                   && b.Crowdmax_core.Cost.latency < a.Crowdmax_core.Cost.latency
                   ))
            pts)
        pts)

let prop_rng_int_rejection_bound =
  (* Rejection sampling invariants of Rng.int: accept_max + 1 is a
     multiple of the bound (uniform residues), the rejected tail is
     strictly shorter than the bound, and draws stay in range. *)
  Q.Test.make ~name:"Rng.int rejection bound respected" ~count
    (Q.make
       ~print:(fun (s, b) -> Printf.sprintf "seed=%d bound=%d" s b)
       Q.Gen.(
         int_range 0 100000 >>= fun s ->
         int_range 1 1000000 >>= fun b -> return (s, b)))
    (fun (seed, bound) ->
      let am = Rng.accept_max bound in
      let b64 = Int64.of_int bound in
      Int64.rem (Int64.add am 1L) b64 = 0L
      && Int64.compare (Int64.sub Int64.max_int am) b64 < 0
      &&
      let rng = Rng.create seed in
      let ok = ref true in
      for _ = 1 to 50 do
        let x = Rng.int rng bound in
        if x < 0 || x >= bound then ok := false
      done;
      !ok)

let prop_rng_split_streams_independent =
  (* The determinism contract of Engine.replicate leans on split streams
     being distinct: sibling splits from one master, and parent vs
     child, must not collide over a prefix of draws. *)
  Q.Test.make ~name:"Rng.split streams don't collide" ~count
    (Q.make
       ~print:(fun (s, k) -> Printf.sprintf "seed=%d splits=%d" s k)
       Q.Gen.(
         int_range 0 100000 >>= fun s ->
         int_range 2 16 >>= fun k -> return (s, k)))
    (fun (seed, k) ->
      let master = Rng.create seed in
      let children = Array.init k (fun _ -> Rng.split master) in
      let prefix rng = Array.init 8 (fun _ -> Rng.bits64 rng) in
      let streams = Array.map prefix children in
      let master_stream = prefix master in
      let distinct = Hashtbl.create 16 in
      Array.iter (fun s -> Hashtbl.replace distinct s ()) streams;
      Hashtbl.replace distinct master_stream ();
      Hashtbl.length distinct = k + 1)

let prop_selection_rounds_valid =
  Q.Test.make ~name:"every selector emits valid rounds" ~count:60
    (Q.make
       ~print:(fun (s, n, b) -> Printf.sprintf "seed=%d n=%d b=%d" s n b)
       Q.Gen.(
         int_range 0 10000 >>= fun s ->
         int_range 2 40 >>= fun n ->
         int_range 1 120 >>= fun b -> return (s, n, b)))
    (fun (seed, n, b) ->
      let rng = Rng.create seed in
      let input =
        {
          S.budget = b;
          candidates = Array.init n (fun i -> i);
          history = Dag.create n;
          round_index = 0;
          total_rounds = 2;
          carried = [];
        }
      in
      List.for_all
        (fun sel ->
          match S.validate_round input (sel.S.select rng input) with
          | Ok _ -> true
          | Error _ -> false)
        S.all)

(* --- flat planner vs reference solvers ------------------------------------ *)

let wide_instance =
  (* Slack up to 1000 against c0 <= 40 (choose2 40 = 780) spans all three
     budget regimes: binding (small slack), unconstrained (budget past
     the ub-table fast path), and clamped (budget > choose2 c0). *)
  Q.make
    ~print:(fun (c0, s) -> Printf.sprintf "(c0=%d, slack=%d)" c0 s)
    Q.Gen.(
      int_range 2 40 >>= fun c0 ->
      int_range 0 1000 >>= fun s -> return (c0, s))

let prop_flat_solver_equivalence =
  (* The flat-arena solver, the bottom-up table, and the boxed hashtbl
     reference all compute the same optimum; flat and hashtbl share
     float-for-float the same operations, so those two must agree
     bit-for-bit, sequence included. *)
  Q.Test.make ~name:"flat solver = bottom-up = hashtbl reference" ~count:60
    wide_instance (fun (c0, s) ->
      let p = Problem.create ~elements:c0 ~budget:(c0 - 1 + s) ~latency:model in
      let flat = Tdp.solve p in
      let boxed = Tdp.solve_hashtbl p in
      let bu = Tdp.solve_bottom_up p in
      flat.Tdp.sequence = boxed.Tdp.sequence
      && Float.equal flat.Tdp.latency boxed.Tdp.latency
      && flat.Tdp.questions_used = boxed.Tdp.questions_used
      && flat.Tdp.states_visited = boxed.Tdp.states_visited
      && Float.abs (flat.Tdp.latency -. bu.Tdp.latency) < 1e-9)

let prop_cached_sweep_equals_fresh =
  (* Interleaved solves over a shuffled budget sweep against one shared
     plan cache reproduce the fresh solve at every point — whatever the
     arena has accumulated from earlier budgets is invisible in the
     answers. The final smaller-c0 solve exercises table reuse across
     instance sizes. *)
  Q.Test.make ~name:"cached shuffled sweep = fresh solves" ~count:40
    (Q.make
       ~print:(fun (seed, c0) -> Printf.sprintf "seed=%d c0=%d" seed c0)
       Q.Gen.(
         int_range 0 10000 >>= fun seed ->
         int_range 3 40 >>= fun c0 -> return (seed, c0)))
    (fun (seed, c0) ->
      let rng = Rng.create seed in
      let budgets =
        Rng.shuffle rng (Array.init 8 (fun _ -> c0 - 1 + Rng.int rng 900))
      in
      let cache = Tdp.Cache.create () in
      let agrees elements b =
        let p = Problem.create ~elements ~budget:b ~latency:model in
        let cached = Tdp.solve ~cache p and fresh = Tdp.solve p in
        cached.Tdp.sequence = fresh.Tdp.sequence
        && Float.equal cached.Tdp.latency fresh.Tdp.latency
        && cached.Tdp.questions_used = fresh.Tdp.questions_used
      in
      Array.for_all (fun b -> agrees c0 b) budgets
      && agrees (c0 - 1) (2 * c0))

(* --- latency models ------------------------------------------------------ *)

let valid_knots_and_q =
  (* Strictly increasing non-negative x, finite y — everything
     [Model.piecewise] accepts — plus a query point reaching past the
     last knot into extrapolation territory. *)
  Q.make
    ~print:(fun (knots, q) ->
      Printf.sprintf "knots=[%s] q=%d"
        (String.concat "; "
           (Array.to_list
              (Array.map (fun (x, y) -> Printf.sprintf "(%d, %g)" x y) knots)))
        q)
    Q.Gen.(
      int_range 1 8 >>= fun n ->
      int_range 0 10 >>= fun x0 ->
      list_repeat n (pair (int_range 1 10) (float_range (-50.0) 500.0))
      >>= fun steps ->
      let knots =
        let x = ref x0 and acc = ref [] in
        List.iteri
          (fun i (dx, y) ->
            if i > 0 then x := !x + dx;
            acc := (!x, y) :: !acc)
          steps;
        Array.of_list (List.rev !acc)
      in
      let xn = fst knots.(Array.length knots - 1) in
      int_range 0 (xn + 20) >>= fun q -> return (knots, q))

let prop_piecewise_eval_sane =
  Q.Test.make ~name:"piecewise eval: finite, bounded, extrapolation exact"
    ~count valid_knots_and_q (fun (knots, q) ->
      let m = Model.piecewise knots in
      let v = Model.eval m q in
      let n = Array.length knots in
      let xn, yn = knots.(n - 1) in
      if not (Float.is_finite v) then false
      else if q <= xn then begin
        (* On [0, xn] the model interpolates (or clamps below the first
           knot): values stay inside the knot-y envelope. *)
        let lo = Array.fold_left (fun a (_, y) -> Float.min a y) infinity knots in
        let hi =
          Array.fold_left (fun a (_, y) -> Float.max a y) neg_infinity knots
        in
        lo -. 1e-9 <= v && v <= hi +. 1e-9
      end
      else if n = 1 then Float.equal v yn
      else begin
        (* Past the last knot: exactly the last segment's slope. *)
        let xp, yp = knots.(n - 2) in
        let slope = (yn -. yp) /. float_of_int (xn - xp) in
        Float.equal v (yn +. (slope *. float_of_int (q - xn)))
      end)

(* --- metrics determinism -------------------------------------------------- *)

let prop_metrics_deterministic =
  (* Same seed => bit-identical simulated-metric documents, whatever the
     parallelism. (Real-time spans are the documented exception.) *)
  let module M = Crowdmax_obs.Metrics in
  Q.Test.make ~name:"metrics documents deterministic given seed" ~count:10
    (Q.make ~print:(Printf.sprintf "seed=%d") Q.Gen.(int_range 0 10_000))
    (fun seed ->
      let sol =
        Tdp.solve (Problem.create ~elements:12 ~budget:60 ~latency:Model.paper_mturk)
      in
      let cfg =
        E.config
          ~source:
            (E.Simulated
               {
                 platform = Crowdmax_crowd.Platform.create ();
                 rwl = { Rwl.votes = 3; error = W.Uniform 0.1 };
               })
          ~deadline:(E.Fixed 400.0) ~straggler:E.Carry_forward
          ~allocation:sol.Tdp.allocation ~selection:S.tournament
          ~latency_model:Model.paper_mturk ()
      in
      let snap jobs =
        M.simulated_only
          (snd (E.replicate_with_metrics ~jobs ~runs:4 ~seed cfg ~elements:12))
      in
      let a = snap 1 in
      a <> [] && M.equal a (snap 1) && M.equal a (snap 2))

(* --- closed-loop estimation ----------------------------------------------- *)

let prop_fit_recovers_model =
  (* Exact (noise-free) observations over a size ladder: the fit must
     hand back the generating parameters. This is the estimator's
     ground-truth contract the NaN guards protect — a silent bad fit
     here corrupts every closed-loop re-plan downstream. *)
  let module Est = Crowdmax_latency.Estimate in
  let gen =
    Q.make
      ~print:(fun (d, a, p) -> Printf.sprintf "delta=%g alpha=%g p=%g" d a p)
      Q.Gen.(
        float_range 1.0 500.0 >>= fun d ->
        float_range 0.01 5.0 >>= fun a ->
        float_range 0.6 1.8 >>= fun p -> return (d, a, p))
  in
  Q.Test.make ~name:"fit recovers the generating latency model" ~count:60 gen
    (fun (delta, alpha, p) ->
      let sizes = [ 5; 10; 20; 40; 80; 160 ] in
      let obs m =
        List.map
          (fun q -> { Est.batch_size = q; seconds = Model.eval m q })
          sizes
      in
      let close a b = Float.abs (a -. b) <= 1e-6 *. Float.max 1.0 (Float.abs b) in
      let linear_ok =
        match Est.fit_linear (obs (Model.linear ~delta ~alpha)) with
        | Model.Linear f -> close f.delta delta && close f.alpha alpha
        | _ -> false
      in
      let power_ok =
        match
          Est.refit ~like:(Model.power ~delta ~alpha ~p)
            (obs (Model.power ~delta ~alpha ~p))
        with
        | Model.Power f ->
            (* delta is anchored by ~like; alpha and p are solved *)
            close f.delta delta
            && Float.abs (f.alpha -. alpha) <= 1e-3 *. Float.max 1.0 alpha
            && Float.abs (f.p -. p) <= 1e-3
        | _ -> false
      in
      linear_ok && power_ok)

let prop_closed_loop_replicate_jobs_deterministic =
  (* The re-fit loop must preserve the engine's any-jobs bit-identity
     for arbitrary seeds, not just the pinned ones: window bookkeeping,
     drift counters and cache invalidation are all per-run state. *)
  let module A = Crowdmax_runtime.Adaptive in
  Q.Test.make ~name:"closed-loop replicate deterministic for jobs 1/2/4"
    ~count:6
    (Q.make ~print:(Printf.sprintf "seed=%d") Q.Gen.(int_range 0 10_000))
    (fun seed ->
      let problem =
        Problem.create ~elements:60 ~budget:180 ~latency:Model.paper_mturk
      in
      let simulated scale =
        let c = Crowdmax_crowd.Platform.default_config in
        let config =
          {
            c with
            Crowdmax_crowd.Platform.base_rate = c.Crowdmax_crowd.Platform.base_rate *. scale;
            attract_per_question = c.Crowdmax_crowd.Platform.attract_per_question *. scale;
          }
        in
        E.Simulated
          {
            platform = Crowdmax_crowd.Platform.create ~config ();
            rwl = { Rwl.votes = 3; error = W.Uniform 0.15 };
          }
      in
      let agg jobs =
        A.replicate ~jobs ~source:(simulated 1.0) ~refit:(A.On_drift 0.5)
          ~source_shift:(1, simulated 0.2) ~runs:4 ~seed ~problem
          ~selection:S.tournament ()
      in
      let base = agg 1 in
      List.for_all
        (fun jobs ->
          let p = agg jobs in
          E.equal_stats base.A.engine_aggregate p.A.engine_aggregate
          && base.A.total_replans = p.A.total_replans
          && base.A.total_refits = p.A.total_refits
          && base.A.total_drift_detected = p.A.total_drift_detected
          && base.A.total_replans_on_drift = p.A.total_replans_on_drift)
        [ 2; 4 ])

let suite =
  [
    ( "properties",
      List.map QCheck_alcotest.to_alcotest
        [
          prop_q_function_bounds;
          prop_q_decreasing;
          prop_sizes_partition;
          prop_tdp_beats_brute_force;
          prop_tdp_within_budget;
          prop_tdp_beats_heuristics;
          prop_theorem3_edge_bound;
          prop_adaptive_matches_static_on_tournaments;
          prop_maxrc_equals_maxind;
          prop_greedy_below_exact;
          prop_expected_rc_formula;
          prop_tournament_minimizes_expected_rc;
          prop_scoring_conserves_energy;
          prop_tournament_selection_singleton;
          prop_heuristics_singleton_under_tournament;
          prop_rwl_always_conflict_free;
          prop_topk_prefix_consistency;
          prop_cost_frontier_pareto;
          prop_rng_int_rejection_bound;
          prop_rng_split_streams_independent;
          prop_selection_rounds_valid;
          prop_flat_solver_equivalence;
          prop_cached_sweep_equals_fresh;
          prop_piecewise_eval_sane;
          prop_metrics_deterministic;
          prop_fit_recovers_model;
          prop_closed_loop_replicate_jobs_deterministic;
        ] );
  ]
