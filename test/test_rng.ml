open Crowdmax_util

let check = Alcotest.check
let tc = Alcotest.test_case

let test_determinism () =
  let a = Rng.create 123 and b = Rng.create 123 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_different_seeds () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  check Alcotest.bool "streams diverge" true (!same < 4)

let test_copy_independent () =
  let a = Rng.create 5 in
  let _ = Rng.bits64 a in
  let b = Rng.copy a in
  let xa = Rng.bits64 a in
  let xb = Rng.bits64 b in
  check Alcotest.int64 "copy continues the same stream" xa xb;
  (* advancing the copy must not affect the original *)
  let _ = Rng.bits64 b in
  let c = Rng.copy a in
  check Alcotest.int64 "original unaffected" (Rng.bits64 a) (Rng.bits64 c)

let test_split_diverges () =
  let a = Rng.create 5 in
  let b = Rng.split a in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  check Alcotest.bool "split streams differ" true (!same < 4)

let test_int_bounds () =
  let rng = Rng.create 77 in
  for _ = 1 to 1000 do
    let x = Rng.int rng 10 in
    check Alcotest.bool "in [0,10)" true (x >= 0 && x < 10)
  done

let test_int_rejects_bad_bound () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_int_in_inclusive () =
  let rng = Rng.create 3 in
  let seen_lo = ref false and seen_hi = ref false in
  for _ = 1 to 2000 do
    let x = Rng.int_in rng 4 6 in
    check Alcotest.bool "in [4,6]" true (x >= 4 && x <= 6);
    if x = 4 then seen_lo := true;
    if x = 6 then seen_hi := true
  done;
  check Alcotest.bool "endpoints reachable" true (!seen_lo && !seen_hi)

(* Rejection-sampling invariants: accept_max + 1 is an exact multiple of
   the bound (so every accepted draw maps to a uniform residue), and the
   rejected tail [accept_max + 1, 2^63) is shorter than one bound's worth
   of values. Power-of-two bounds must never reject. *)
let test_accept_max_invariants () =
  List.iter
    (fun bound ->
      let am = Rng.accept_max bound in
      let b = Int64.of_int bound in
      check Alcotest.int64
        (Printf.sprintf "accept_max+1 multiple of %d" bound)
        0L
        (Int64.rem (Int64.add am 1L) b);
      check Alcotest.bool
        (Printf.sprintf "tail shorter than bound for %d" bound)
        true
        (Int64.compare (Int64.sub Int64.max_int am) b < 0))
    [ 1; 2; 3; 7; 10; 100; 1 lsl 20; (1 lsl 20) + 1; max_int ]

let test_accept_max_power_of_two_no_rejection () =
  List.iter
    (fun bound ->
      check Alcotest.int64
        (Printf.sprintf "2^k bound %d accepts everything" bound)
        Int64.max_int (Rng.accept_max bound))
    [ 1; 2; 4; 1 lsl 10; 1 lsl 30; 1 lsl 61 ]

let test_accept_max_rejects_bad_bound () =
  Alcotest.check_raises "zero bound"
    (Invalid_argument "Rng.accept_max: bound must be positive") (fun () ->
      ignore (Rng.accept_max 0))

let test_int_covers_range () =
  let rng = Rng.create 9 in
  let counts = Array.make 8 0 in
  for _ = 1 to 8000 do
    let x = Rng.int rng 8 in
    counts.(x) <- counts.(x) + 1
  done;
  Array.iteri
    (fun i c ->
      check Alcotest.bool (Printf.sprintf "bucket %d roughly uniform" i) true
        (c > 700 && c < 1300))
    counts

let test_float_bounds () =
  let rng = Rng.create 13 in
  for _ = 1 to 1000 do
    let x = Rng.float rng 2.5 in
    check Alcotest.bool "in [0,2.5)" true (x >= 0.0 && x < 2.5)
  done

let test_bernoulli_extremes () =
  let rng = Rng.create 17 in
  for _ = 1 to 50 do
    check Alcotest.bool "p=0 never" false (Rng.bernoulli rng 0.0);
    check Alcotest.bool "p=1 always" true (Rng.bernoulli rng 1.0)
  done

let test_bernoulli_rate () =
  let rng = Rng.create 19 in
  let hits = ref 0 in
  for _ = 1 to 10000 do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. 10000.0 in
  check Alcotest.bool "rate near 0.3" true (rate > 0.27 && rate < 0.33)

let test_exponential_mean () =
  let rng = Rng.create 23 in
  let n = 20000 in
  let total = ref 0.0 in
  for _ = 1 to n do
    let x = Rng.exponential rng 5.0 in
    check Alcotest.bool "positive" true (x >= 0.0);
    total := !total +. x
  done;
  let mean = !total /. float_of_int n in
  check Alcotest.bool "mean near 5" true (mean > 4.6 && mean < 5.4)

let test_exponential_rejects () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "bad mean"
    (Invalid_argument "Rng.exponential: mean must be positive") (fun () ->
      ignore (Rng.exponential rng 0.0))

let test_gaussian_moments () =
  let rng = Rng.create 29 in
  let n = 20000 in
  let xs = Array.init n (fun _ -> Rng.gaussian rng ~mu:10.0 ~sigma:2.0) in
  let mean = Stats.mean xs in
  let sd = Stats.stddev xs in
  check Alcotest.bool "mean near 10" true (mean > 9.9 && mean < 10.1);
  check Alcotest.bool "sd near 2" true (sd > 1.9 && sd < 2.1)

let test_lognormal_positive () =
  let rng = Rng.create 31 in
  for _ = 1 to 1000 do
    check Alcotest.bool "positive" true (Rng.lognormal rng ~mu:1.0 ~sigma:0.5 > 0.0)
  done

let test_shuffle_is_permutation () =
  let rng = Rng.create 37 in
  let a = Array.init 50 (fun i -> i) in
  let b = Rng.shuffle rng a in
  check Alcotest.(array int) "original untouched" (Array.init 50 (fun i -> i)) a;
  let sorted = Array.copy b in
  Array.sort compare sorted;
  check Alcotest.(array int) "same multiset" a sorted

let test_permutation_valid () =
  let rng = Rng.create 41 in
  for n = 0 to 20 do
    let p = Rng.permutation rng n in
    let sorted = Array.copy p in
    Array.sort compare sorted;
    check Alcotest.(array int) "permutation" (Array.init n (fun i -> i)) sorted
  done

let test_permutation_varies () =
  let rng = Rng.create 43 in
  let p1 = Rng.permutation rng 30 in
  let p2 = Rng.permutation rng 30 in
  check Alcotest.bool "two draws differ" true (p1 <> p2)

let test_sample_without_replacement () =
  let rng = Rng.create 47 in
  for _ = 1 to 100 do
    let s = Rng.sample_without_replacement rng 5 12 in
    check Alcotest.int "size" 5 (Array.length s);
    let sorted = Array.copy s in
    Array.sort compare sorted;
    Array.iteri
      (fun i x ->
        check Alcotest.bool "in range" true (x >= 0 && x < 12);
        if i > 0 then check Alcotest.bool "distinct" true (sorted.(i - 1) <> x))
      sorted
  done

let test_sample_rejects () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "k > n" (Invalid_argument "Rng.sample_without_replacement")
    (fun () -> ignore (Rng.sample_without_replacement rng 5 3))

let test_choose () =
  let rng = Rng.create 53 in
  let a = [| 10; 20; 30 |] in
  for _ = 1 to 100 do
    let x = Rng.choose rng a in
    check Alcotest.bool "member" true (Array.exists (( = ) x) a)
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Rng.choose: empty array")
    (fun () -> ignore (Rng.choose rng [||]))

let suite =
  [
    ( "rng",
      [
        tc "determinism" `Quick test_determinism;
        tc "different seeds diverge" `Quick test_different_seeds;
        tc "copy is independent" `Quick test_copy_independent;
        tc "split diverges" `Quick test_split_diverges;
        tc "int bounds" `Quick test_int_bounds;
        tc "int rejects bad bound" `Quick test_int_rejects_bad_bound;
        tc "int_in inclusive" `Quick test_int_in_inclusive;
        tc "accept_max invariants" `Quick test_accept_max_invariants;
        tc "accept_max powers of two" `Quick
          test_accept_max_power_of_two_no_rejection;
        tc "accept_max rejects bad bound" `Quick
          test_accept_max_rejects_bad_bound;
        tc "int covers range" `Quick test_int_covers_range;
        tc "float bounds" `Quick test_float_bounds;
        tc "bernoulli extremes" `Quick test_bernoulli_extremes;
        tc "bernoulli rate" `Quick test_bernoulli_rate;
        tc "exponential mean" `Quick test_exponential_mean;
        tc "exponential rejects" `Quick test_exponential_rejects;
        tc "gaussian moments" `Quick test_gaussian_moments;
        tc "lognormal positive" `Quick test_lognormal_positive;
        tc "shuffle is permutation" `Quick test_shuffle_is_permutation;
        tc "permutation valid" `Quick test_permutation_valid;
        tc "permutation varies" `Quick test_permutation_varies;
        tc "sample without replacement" `Quick test_sample_without_replacement;
        tc "sample rejects" `Quick test_sample_rejects;
        tc "choose" `Quick test_choose;
      ] );
  ]
