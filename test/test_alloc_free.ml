(* Runtime cross-check of the [@@alloc_free] annotations.

   The static R6 rule (tools/lint/alloc_free.ml) proves the annotated
   bodies contain no allocating *construct*; what the typedtree walk
   cannot see is boxing the code generator introduces — a float return
   crossing an -opaque module boundary, an int64 spilled to the heap.
   This harness closes that gap with [Gc.minor_words]: the steady-state
   kernels must allocate exactly nothing per call, and the two composite
   hot paths (the tDP solver, the platform event loop) must stay within
   a small per-call budget that is independent of their iteration count
   (states settled / events drained), so any per-state or per-event box
   shows up as a 1000x blowout, not a 5% drift.

   Methodology: warm the closure twice (fills lazy init and promotes
   the closure itself), read the minor-words counter, run the loop,
   read again. [slack] absorbs the boxed float that the first counter
   read itself allocates. The dev profile compiles with -opaque, which
   blocks cross-module inlining — these bounds hold even so, because
   every measured kernel either returns immediates or keeps its floats
   in arrays/fields rather than returning them. *)

module Cal = Crowdmax_util.Event_calendar
module Pair_set = Crowdmax_util.Pair_set
module Rng = Crowdmax_util.Rng
module Ints = Crowdmax_util.Ints
module Dag = Crowdmax_graph.Answer_dag
module Metrics = Crowdmax_obs.Metrics
module Tournament = Crowdmax_tournament.Tournament
module Problem = Crowdmax_core.Problem
module Tdp = Crowdmax_core.Tdp
module Model = Crowdmax_latency.Model
module Platform = Crowdmax_crowd.Platform

let iters = 10_000

(* The counter read before the loop allocates one boxed float itself;
   anything beyond that small constant is a real per-call allocation
   (even 2 words/call over 10k iterations is 20_000 words). *)
let slack = 64.0

let words_for ~n f =
  f ();
  f ();
  let before = Gc.minor_words () in
  for _ = 1 to n do
    f ()
  done;
  Gc.minor_words () -. before

let check_alloc_free name f =
  let words = words_for ~n:iters f in
  if words > slack then
    Alcotest.failf "%s: %.0f minor words over %d iterations (want 0)" name
      words iters

let test_event_calendar () =
  (* capacity pre-sized: the [@alloc_cold] grow path must not fire
     mid-measurement (length never exceeds 2 here anyway) *)
  let cal = Cal.create ~capacity:64 () in
  check_alloc_free "Event_calendar.add/remove_min" (fun () ->
      Cal.add cal ~time:2.5 7 9;
      Cal.add cal ~time:1.5 3 4;
      Cal.remove_min cal;
      Cal.remove_min cal)

let test_pair_set () =
  let ps = Pair_set.create ~expected:64 100 in
  ignore (Pair_set.add ps 3 9 : bool);
  check_alloc_free "Pair_set.mem/duplicate add" (fun () ->
      ignore (Pair_set.mem ps 3 9 : bool);
      ignore (Pair_set.mem ps 4 5 : bool);
      ignore (Pair_set.add ps 3 9 : bool))

let test_rng () =
  let rng = Rng.create 42 in
  check_alloc_free "Rng.int/bool" (fun () ->
      ignore (Rng.int rng 100 : int);
      ignore (Rng.bool rng : bool))

let test_answer_dag () =
  (* edge pool pre-sized past warmup + the measured loop so the
     [@alloc_cold] grow_pool path stays cold *)
  let dag = Dag.create ~edge_capacity:(2 * iters) 8 in
  check_alloc_free "Answer_dag.add_answer_unchecked/is_singleton" (fun () ->
      Dag.add_answer_unchecked dag ~winner:0 ~loser:1;
      ignore (Dag.is_singleton dag : bool);
      ignore (Dag.losses dag 1 : int))

let test_metrics () =
  let m = Metrics.create () in
  let c = Metrics.counter m ~section:"alloc" "count" in
  let p = Metrics.peak m ~section:"alloc" "peak" in
  let h = Metrics.histogram m ~section:"alloc" "h" ~buckets:[| 1.0; 10.0 |] in
  check_alloc_free "Metrics.incr/add/record_peak/observe" (fun () ->
      Metrics.incr c;
      Metrics.add c 3;
      Metrics.record_peak p 5;
      Metrics.observe h 2.5)

let test_int_kernels () =
  check_alloc_free "Tournament.questions + Ints.choose2/ceil_div" (fun () ->
      ignore (Tournament.questions 64 8 : int);
      ignore (Ints.choose2 100 : int);
      ignore (Ints.ceil_div 17 4 : int))

(* The composite paths: not exactly zero (setup builds latency tables,
   the report record, one boxed return), but the budget must not scale
   with the work done inside the [@@alloc_free] loops. *)

let test_tdp_solve_bounded () =
  (* Same c0, wildly different DP work: 44887 settled states at the
     tight budget vs 6 at the loose one. The per-solve setup (latency
     tables, ub table, arena — rebuilt each uncached solve, boxed
     latency evals and all) is identical between the two, so the
     difference isolates what the [@@alloc_free] run_stack loop itself
     allocates: one 2-word float box per state would show as ~90k
     words. Measured delta on the dev profile: ~68 words. *)
  let solve_words c0 b =
    let p = Problem.create ~elements:c0 ~budget:b ~latency:Model.paper_mturk in
    let sol = Tdp.solve p in
    (sol.Tdp.states_visited, words_for ~n:1 (fun () -> ignore (Tdp.solve p)))
  in
  let tight_states, tight_words = solve_words 500 999 in
  let loose_states, loose_words = solve_words 500 4000 in
  Alcotest.(check int) "tight solve settles the pinned state count" 44887
    tight_states;
  Alcotest.(check int) "loose solve settles the pinned state count" 6
    loose_states;
  let delta = tight_words -. loose_words in
  if delta > 2_048.0 then
    Alcotest.failf
      "Tdp.solve c0=500: %.0f minor words more at b=999 (%d states) than at \
       b=4000 (%d states) — the run_stack loop is leaking per-state \
       allocations"
      delta tight_states loose_states

let test_platform_simulate_bounded () =
  let p = Platform.create () in
  let scratch = Platform.scratch () in
  let rng = Rng.create 7 in
  let batch_words q =
    words_for ~n:1 (fun () ->
        ignore (Platform.batch_latency ~scratch p rng q : float))
  in
  (* The dev profile compiles with -opaque, so the event loop's
     cross-module float traffic — Rng.exponential/lognormal returns,
     the calendar's [~time] argument — is boxed at every call: a
     floor of ~12 minor words per question that release builds
     mostly inline away. That boxing is the documented dynamic
     soundness boundary of R6 (DESIGN.md §6g); the pinned per-question
     coefficient keeps it visible and still catches any structural
     per-event allocation (a tuple, closure or list cell per event
     roughly doubles it). *)
  let w400 = batch_words 400 in
  let w800 = batch_words 800 in
  let per_q = (w800 -. w400) /. 400.0 in
  if per_q > 16.0 then
    Alcotest.failf
      "Platform.batch_latency: %.1f minor words per question (dev-profile \
       float-boxing floor is ~12; the event loop gained a structural \
       per-event allocation)"
      per_q

let suite =
  [
    ( "alloc_free",
      [
        Alcotest.test_case "event_calendar add/remove_min" `Quick
          test_event_calendar;
        Alcotest.test_case "pair_set mem/add" `Quick test_pair_set;
        Alcotest.test_case "rng int/bool" `Quick test_rng;
        Alcotest.test_case "answer_dag add/is_singleton" `Quick
          test_answer_dag;
        Alcotest.test_case "metrics incr/add/peak/observe" `Quick test_metrics;
        Alcotest.test_case "tournament/ints kernels" `Quick test_int_kernels;
        Alcotest.test_case "tdp solve bounded" `Quick test_tdp_solve_bounded;
        Alcotest.test_case "platform simulate bounded" `Quick
          test_platform_simulate_bounded;
      ] );
  ]
