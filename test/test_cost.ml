module Cost = Crowdmax_core.Cost
module Allocation = Crowdmax_core.Allocation
module Model = Crowdmax_latency.Model

let tc = Alcotest.test_case
let checkf = Alcotest.check (Alcotest.float 1e-9)
let check_int = Alcotest.check Alcotest.int
let check_bool = Alcotest.check Alcotest.bool

let test_mturk_pricing () =
  checkf "100 questions = $1" 1.0
    (Cost.dollars_of_questions Cost.mturk_pricing 100);
  check_int "a dollar buys 100" 100
    (Cost.questions_for_dollars Cost.mturk_pricing 1.0)

let test_votes_multiply_cost () =
  let p = Cost.create_pricing ~per_question:0.02 ~votes_per_question:3 in
  checkf "3 votes at 2 cents" 0.6 (Cost.dollars_of_questions p 10);
  check_int "inverse respects votes" 10 (Cost.questions_for_dollars p 0.6)

let test_pricing_validation () =
  Alcotest.check_raises "negative price"
    (Invalid_argument "Cost.create_pricing: negative price") (fun () ->
      ignore (Cost.create_pricing ~per_question:(-0.01) ~votes_per_question:1));
  Alcotest.check_raises "zero votes"
    (Invalid_argument "Cost.create_pricing: votes < 1") (fun () ->
      ignore (Cost.create_pricing ~per_question:0.01 ~votes_per_question:0))

let test_zero_dollars () =
  check_int "no money no questions" 0
    (Cost.questions_for_dollars Cost.mturk_pricing 0.0)

let test_allocation_cost () =
  let a = Allocation.of_round_budgets [ 10; 20 ] in
  checkf "30 cents" 0.3 (Cost.allocation_cost Cost.mturk_pricing a)

let test_roundtrip_money_questions () =
  let p = Cost.create_pricing ~per_question:0.01 ~votes_per_question:5 in
  for q = 0 to 200 do
    let d = Cost.dollars_of_questions p q in
    check_bool "inverse recovers at least q" true
      (Cost.questions_for_dollars p d >= q)
  done

let test_frontier_shape () =
  let pts =
    Cost.frontier ~latency:Model.paper_mturk ~elements:500
      ~budgets:[ 499; 1000; 2000; 4000; 8000; 16000 ] ()
  in
  check_bool "non-empty" true (List.length pts > 1);
  (* ascending dollars, strictly descending latency *)
  let rec walk = function
    | a :: (b :: _ as rest) ->
        check_bool "dollars ascend" true (a.Cost.dollars <= b.Cost.dollars);
        check_bool "latency strictly falls" true (a.Cost.latency > b.Cost.latency);
        walk rest
    | _ -> ()
  in
  walk pts;
  (* the plateau beyond 4000 questions collapses to one point: tDP never
     uses more than 3475 questions, so 8000 and 16000 add no new point *)
  check_bool "plateau deduplicated" true
    (List.for_all (fun pt -> pt.Cost.budget <= 8000) pts)

let test_frontier_skips_infeasible () =
  let pts =
    Cost.frontier ~latency:Model.paper_mturk ~elements:100
      ~budgets:[ 10; 50; 99; 200 ] ()
  in
  List.iter
    (fun pt -> check_bool "feasible only" true (pt.Cost.budget >= 99))
    pts;
  check_bool "something survives" true (pts <> [])

let test_frontier_respects_pricing () =
  let expensive = Cost.create_pricing ~per_question:1.0 ~votes_per_question:1 in
  let pts =
    Cost.frontier ~pricing:expensive ~latency:Model.paper_mturk ~elements:50
      ~budgets:[ 49; 100 ] ()
  in
  List.iter
    (fun pt ->
      checkf "dollars = questions at $1"
        pt.Cost.dollars
        (Cost.dollars_of_questions expensive
           (Cost.questions_for_dollars expensive pt.Cost.dollars)))
    pts

let suite =
  [
    ( "cost",
      [
        tc "mturk pricing" `Quick test_mturk_pricing;
        tc "votes multiply cost" `Quick test_votes_multiply_cost;
        tc "pricing validation" `Quick test_pricing_validation;
        tc "zero dollars" `Quick test_zero_dollars;
        tc "allocation cost" `Quick test_allocation_cost;
        tc "money/questions roundtrip" `Quick test_roundtrip_money_questions;
        tc "frontier shape" `Quick test_frontier_shape;
        tc "frontier skips infeasible" `Quick test_frontier_skips_infeasible;
        tc "frontier pricing" `Quick test_frontier_respects_pricing;
      ] );
  ]
