module Dag = Crowdmax_graph.Answer_dag

let tc = Alcotest.test_case
let check_int = Alcotest.check Alcotest.int
let check_bool = Alcotest.check Alcotest.bool
let sorted l = List.sort compare l

let test_empty () =
  let d = Dag.create 4 in
  check_int "size" 4 (Dag.size d);
  check_int "answers" 0 (Dag.answer_count d);
  Alcotest.check Alcotest.(list int) "all candidates" [ 0; 1; 2; 3 ]
    (Dag.remaining_candidates d);
  check_bool "not singleton" false (Dag.is_singleton d);
  Alcotest.check Alcotest.(option int) "no winner" None (Dag.winner d)

let test_create_rejects_negative () =
  Alcotest.check_raises "negative" (Invalid_argument "Answer_dag.create: negative size")
    (fun () -> ignore (Dag.create (-1)))

let test_zero_elements () =
  let d = Dag.create 0 in
  Alcotest.check Alcotest.(list int) "no candidates" [] (Dag.remaining_candidates d)

let test_add_answer () =
  let d = Dag.create 3 in
  Dag.add_answer d ~winner:0 ~loser:1;
  check_bool "direct" true (Dag.beats_directly d 0 1);
  check_bool "not reversed" false (Dag.beats_directly d 1 0);
  check_int "losses of 1" 1 (Dag.losses d 1);
  check_int "losses of 0" 0 (Dag.losses d 0);
  Alcotest.check Alcotest.(list int) "candidates" [ 0; 2 ]
    (Dag.remaining_candidates d)

let test_idempotent () =
  let d = Dag.create 3 in
  Dag.add_answer d ~winner:0 ~loser:1;
  Dag.add_answer d ~winner:0 ~loser:1;
  check_int "one answer" 1 (Dag.answer_count d)

let test_self_comparison () =
  let d = Dag.create 3 in
  Alcotest.check_raises "self" (Invalid_argument "Answer_dag.add_answer: self-comparison")
    (fun () -> Dag.add_answer d ~winner:1 ~loser:1)

let test_out_of_range () =
  let d = Dag.create 3 in
  Alcotest.check_raises "range" (Invalid_argument "Answer_dag: out-of-range element in add_answer")
    (fun () -> Dag.add_answer d ~winner:0 ~loser:3)

let test_cycle_detection () =
  let d = Dag.create 3 in
  Dag.add_answer d ~winner:0 ~loser:1;
  Dag.add_answer d ~winner:1 ~loser:2;
  (* 2 beating 0 closes a transitive cycle *)
  (try
     Dag.add_answer d ~winner:2 ~loser:0;
     Alcotest.fail "expected Cycle"
   with Dag.Cycle (w, l) ->
     check_int "winner in exn" 2 w;
     check_int "loser in exn" 0 l);
  check_int "cycle not recorded" 2 (Dag.answer_count d)

let test_unchecked_skips_cycle_check () =
  let d = Dag.create 3 in
  Dag.add_answer_unchecked d ~winner:0 ~loser:1;
  Dag.add_answer_unchecked d ~winner:1 ~loser:2;
  check_int "two answers" 2 (Dag.answer_count d);
  check_bool "transitive works" true (Dag.beats d 0 2)

let test_beats_transitive () =
  let d = Dag.create 5 in
  Dag.add_answer d ~winner:0 ~loser:1;
  Dag.add_answer d ~winner:1 ~loser:2;
  Dag.add_answer d ~winner:2 ~loser:3;
  check_bool "chain" true (Dag.beats d 0 3);
  check_bool "not self" false (Dag.beats d 0 0);
  check_bool "unrelated" false (Dag.beats d 0 4);
  check_bool "no reverse" false (Dag.beats d 3 0)

let test_singleton_and_winner () =
  let d = Dag.create 3 in
  Dag.add_answer d ~winner:2 ~loser:0;
  Dag.add_answer d ~winner:2 ~loser:1;
  check_bool "singleton" true (Dag.is_singleton d);
  Alcotest.check Alcotest.(option int) "winner" (Some 2) (Dag.winner d)

let test_copy_independent () =
  let d = Dag.create 3 in
  Dag.add_answer d ~winner:0 ~loser:1;
  let d' = Dag.copy d in
  Dag.add_answer d' ~winner:0 ~loser:2;
  check_int "copy has 2" 2 (Dag.answer_count d');
  check_int "original has 1" 1 (Dag.answer_count d)

let test_answers_roundtrip () =
  let d = Dag.create 4 in
  Dag.add_answer d ~winner:3 ~loser:0;
  Dag.add_answer d ~winner:3 ~loser:1;
  Dag.add_answer d ~winner:1 ~loser:2;
  Alcotest.check
    Alcotest.(list (pair int int))
    "answers" (sorted [ (3, 0); (3, 1); (1, 2) ])
    (sorted (Dag.answers d))

let test_direct_lists () =
  let d = Dag.create 4 in
  Dag.add_answer d ~winner:0 ~loser:1;
  Dag.add_answer d ~winner:0 ~loser:2;
  Dag.add_answer d ~winner:3 ~loser:0;
  Alcotest.check Alcotest.(list int) "wins of 0" [ 1; 2 ]
    (sorted (Dag.direct_wins d 0));
  Alcotest.check Alcotest.(list int) "losses-to of 0" [ 3 ]
    (sorted (Dag.direct_losses_to d 0))

(* Figure 7(a) of the paper: answers {(a>b),(c>b),(d>c),(d>a),(d>b)}
   over a=0, b=1, c=2, d=3; RC must be {d}. *)
let test_paper_figure7 () =
  let d = Dag.create 4 in
  Dag.add_answer d ~winner:0 ~loser:1;
  Dag.add_answer d ~winner:2 ~loser:1;
  Dag.add_answer d ~winner:3 ~loser:2;
  Dag.add_answer d ~winner:3 ~loser:0;
  Dag.add_answer d ~winner:3 ~loser:1;
  Alcotest.check Alcotest.(list int) "RC = {d}" [ 3 ]
    (Dag.remaining_candidates d)

let test_topological_order () =
  let d = Dag.create 4 in
  Dag.add_answer d ~winner:3 ~loser:2;
  Dag.add_answer d ~winner:2 ~loser:1;
  Dag.add_answer d ~winner:1 ~loser:0;
  let order = Dag.topological_order d in
  let pos = Array.make 4 0 in
  Array.iteri (fun i v -> pos.(v) <- i) order;
  check_bool "winners first" true (pos.(3) < pos.(2) && pos.(2) < pos.(1) && pos.(1) < pos.(0))

let test_transitive_win_counts () =
  let d = Dag.create 5 in
  (* 4 beats 3 beats {1,2}; 0 isolated *)
  Dag.add_answer d ~winner:4 ~loser:3;
  Dag.add_answer d ~winner:3 ~loser:1;
  Dag.add_answer d ~winner:3 ~loser:2;
  let counts = Dag.transitive_win_counts d in
  check_int "4 beats 3 transitively" 3 counts.(4);
  check_int "3 beats 2" 2 counts.(3);
  check_int "leaf" 0 counts.(1);
  check_int "isolated" 0 counts.(0)

let test_transitive_win_counts_diamond () =
  (* 0 -> {1,2} -> 3: 3 must be counted once for 0 *)
  let d = Dag.create 4 in
  Dag.add_answer d ~winner:0 ~loser:1;
  Dag.add_answer d ~winner:0 ~loser:2;
  Dag.add_answer d ~winner:1 ~loser:3;
  Dag.add_answer d ~winner:2 ~loser:3;
  let counts = Dag.transitive_win_counts d in
  check_int "diamond dedup" 3 counts.(0)

let test_large_bitset_boundary () =
  (* exercise the 63-bit word boundary in transitive_win_counts *)
  let n = 130 in
  let d = Dag.create n in
  for i = 0 to n - 2 do
    Dag.add_answer_unchecked d ~winner:i ~loser:(i + 1)
  done;
  let counts = Dag.transitive_win_counts d in
  check_int "head beats everyone" (n - 1) counts.(0);
  check_int "middle" (n - 1 - 64) counts.(64);
  check_int "tail" 0 counts.(n - 1)

let suite =
  [
    ( "answer_dag",
      [
        tc "empty" `Quick test_empty;
        tc "create rejects negative" `Quick test_create_rejects_negative;
        tc "zero elements" `Quick test_zero_elements;
        tc "add answer" `Quick test_add_answer;
        tc "idempotent" `Quick test_idempotent;
        tc "self comparison" `Quick test_self_comparison;
        tc "out of range" `Quick test_out_of_range;
        tc "cycle detection" `Quick test_cycle_detection;
        tc "unchecked add" `Quick test_unchecked_skips_cycle_check;
        tc "transitive beats" `Quick test_beats_transitive;
        tc "singleton & winner" `Quick test_singleton_and_winner;
        tc "copy independent" `Quick test_copy_independent;
        tc "answers roundtrip" `Quick test_answers_roundtrip;
        tc "direct lists" `Quick test_direct_lists;
        tc "paper Fig 7(a)" `Quick test_paper_figure7;
        tc "topological order" `Quick test_topological_order;
        tc "transitive win counts" `Quick test_transitive_win_counts;
        tc "win counts dedup (diamond)" `Quick test_transitive_win_counts_diamond;
        tc "bitset word boundary" `Quick test_large_bitset_boundary;
      ] );
  ]
