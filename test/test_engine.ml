module E = Crowdmax_runtime.Engine
module S = Crowdmax_selection.Selection
module Model = Crowdmax_latency.Model
module Problem = Crowdmax_core.Problem
module Tdp = Crowdmax_core.Tdp
module Allocation = Crowdmax_core.Allocation
module Heuristics = Crowdmax_core.Heuristics
module G = Crowdmax_crowd.Ground_truth
module Platform = Crowdmax_crowd.Platform
module Rwl = Crowdmax_crowd.Rwl
module W = Crowdmax_crowd.Worker
module Rng = Crowdmax_util.Rng

let tc = Alcotest.test_case
let check_int = Alcotest.check Alcotest.int
let check_bool = Alcotest.check Alcotest.bool
let checkf eps = Alcotest.check (Alcotest.float eps)

let model = Model.linear ~delta:100.0 ~alpha:1.0

let tdp_alloc c0 b =
  (Tdp.solve (Problem.create ~elements:c0 ~budget:b ~latency:model)).Tdp.allocation

let oracle_cfg ?(selection = S.tournament) ?pad alloc =
  E.config ?pad_to_round_budget:pad ~allocation:alloc ~selection ~latency_model:model ()

let test_finds_true_max () =
  let rng = Rng.create 3 in
  for _ = 1 to 25 do
    let c0 = 2 + Rng.int rng 60 in
    let alloc = tdp_alloc c0 (4 * c0) in
    let truth = G.random rng c0 in
    let r = E.run rng (oracle_cfg alloc) truth in
    check_bool "correct" true r.E.correct;
    check_bool "singleton" true r.E.singleton;
    check_int "chosen is true max" (G.max_element truth) r.E.chosen
  done

let test_latency_matches_tdp_prediction () =
  (* with oracle answers + tournament selection, the engine's latency
     equals the tDP objective value *)
  let rng = Rng.create 5 in
  let c0 = 50 in
  let sol = Tdp.solve (Problem.create ~elements:c0 ~budget:300 ~latency:model) in
  let truth = G.random rng c0 in
  let r = E.run rng (oracle_cfg sol.Tdp.allocation) truth in
  checkf 1e-6 "engine = DP objective" sol.Tdp.latency r.E.total_latency;
  check_int "questions" sol.Tdp.questions_used r.E.questions_posted

let test_trace_is_consistent () =
  let rng = Rng.create 7 in
  let alloc = tdp_alloc 40 200 in
  let truth = G.random rng 40 in
  let r = E.run rng (oracle_cfg alloc) truth in
  check_int "trace length" r.E.rounds_run (List.length r.E.trace);
  let rec walk prev = function
    | [] -> ()
    | rr :: rest ->
        check_int "candidates chain" prev rr.E.candidates_before;
        check_bool "rounds shrink candidates" true
          (rr.E.candidates_after <= rr.E.candidates_before);
        check_bool "latency positive" true (rr.E.round_latency > 0.0);
        walk rr.E.candidates_after rest
  in
  walk 40 r.E.trace;
  (match List.rev r.E.trace with
  | last :: _ -> check_int "ends at 1" 1 last.E.candidates_after
  | [] -> Alcotest.fail "no trace");
  checkf 1e-9 "latency adds up"
    (List.fold_left (fun acc rr -> acc +. rr.E.round_latency) 0.0 r.E.trace)
    r.E.total_latency

let test_early_stop_on_singleton () =
  (* generous allocation: extra rounds after reaching one candidate must
     not run *)
  let alloc = Allocation.of_round_budgets [ 45; 45; 45; 45; 45 ] in
  let rng = Rng.create 9 in
  let truth = G.random rng 10 in
  let r = E.run rng (oracle_cfg alloc) truth in
  (* round 1: G_T(10,1) fits in 45 questions -> finished in one round *)
  check_int "one round" 1 r.E.rounds_run;
  check_bool "singleton" true r.E.singleton

let test_padding_charges_full_budget () =
  (* 6 candidates, round budget 33: only 15 distinct pairs exist, so 18
     redundant fillers are posted (HE's behaviour in the paper) *)
  let alloc = Allocation.of_round_budgets [ 33 ] in
  let rng = Rng.create 11 in
  let truth = G.random rng 6 in
  let r = E.run rng (oracle_cfg alloc) truth in
  check_int "posted = budget" 33 r.E.questions_posted;
  checkf 1e-9 "latency of the padded batch" (Model.eval model 33) r.E.total_latency;
  match r.E.trace with
  | [ rr ] ->
      check_int "15 distinct" 15 rr.E.distinct_questions;
      check_int "18 padded" 18 rr.E.padded_questions
  | _ -> Alcotest.fail "expected one round"

let test_padding_disabled () =
  let alloc = Allocation.of_round_budgets [ 33 ] in
  let rng = Rng.create 11 in
  let truth = G.random rng 6 in
  let r = E.run rng (oracle_cfg ~pad:false alloc) truth in
  check_int "only distinct posted" 15 r.E.questions_posted;
  checkf 1e-9 "cheaper round" (Model.eval model 15) r.E.total_latency

let test_insufficient_allocation_no_singleton () =
  (* one tiny round for many elements: the run must end non-singleton
     with a scored best guess *)
  let alloc = Allocation.of_round_budgets [ 2 ] in
  let rng = Rng.create 13 in
  let truth = G.random rng 10 in
  let r = E.run rng (oracle_cfg alloc) truth in
  check_bool "no singleton" false r.E.singleton;
  check_bool "still picks something" true (r.E.chosen >= 0 && r.E.chosen < 10)

let test_single_element_collection () =
  let alloc = Allocation.of_round_budgets [] in
  let rng = Rng.create 15 in
  let truth = G.random rng 1 in
  let r = E.run rng (oracle_cfg alloc) truth in
  check_bool "trivially correct" true r.E.correct;
  check_int "no rounds" 0 r.E.rounds_run;
  checkf 1e-9 "no latency" 0.0 r.E.total_latency

let test_heuristic_allocations_terminate () =
  let rng = Rng.create 17 in
  List.iter
    (fun Heuristics.{ name; allocate } ->
      let alloc = allocate ~elements:30 ~budget:120 in
      let truth = G.random rng 30 in
      let r = E.run rng (oracle_cfg alloc) truth in
      check_bool (name ^ " singleton") true r.E.singleton;
      check_bool (name ^ " correct") true r.E.correct)
    Heuristics.all

let test_simulated_source_with_rwl () =
  let platform = Platform.create () in
  let cfg =
    E.config
      ~source:(E.Simulated { platform; rwl = { Rwl.votes = 1; error = W.Perfect } })
      ~allocation:(tdp_alloc 20 100) ~selection:S.tournament ~latency_model:model ()
  in
  let rng = Rng.create 19 in
  let truth = G.random rng 20 in
  let r = E.run rng cfg truth in
  check_bool "correct with perfect simulated workers" true r.E.correct;
  check_bool "platform latency dominates" true (r.E.total_latency > 100.0)

let test_simulated_pool_source () =
  let rng = Rng.create 21 in
  let platform = Platform.create () in
  let pool =
    Crowdmax_crowd.Worker_pool.create rng ~workers:50 ~good_fraction:0.8
      ~good_accuracy:0.97 ~bad_accuracy:0.6
  in
  let cfg =
    E.config
      ~source:(E.Simulated_pool { platform; pool; votes = 5 })
      ~allocation:(tdp_alloc 30 200) ~selection:S.tournament
      ~latency_model:model ()
  in
  let correct = ref 0 in
  for _ = 1 to 10 do
    let truth = G.random rng 30 in
    let r = E.run rng cfg truth in
    check_bool "always terminates with a pick" true (r.E.chosen >= 0);
    if r.E.correct then incr correct
  done;
  (* mostly-good pool with 5 weighted votes: usually right *)
  check_bool "mostly correct" true (!correct >= 6)

let test_replicate_aggregates () =
  let alloc = tdp_alloc 25 120 in
  let agg = E.replicate ~runs:30 ~seed:7 (oracle_cfg alloc) ~elements:25 in
  check_int "runs" 30 agg.E.runs;
  checkf 1e-9 "all correct" 1.0 agg.E.correct_rate;
  checkf 1e-9 "all singleton" 1.0 agg.E.singleton_rate;
  check_bool "positive latency" true (agg.E.mean_latency > 0.0);
  check_bool "median <= p95" true (agg.E.median_latency <= agg.E.p95_latency);
  check_bool "p95 plausible" true
    (agg.E.p95_latency >= agg.E.mean_latency -. (3.0 *. agg.E.stddev_latency))

let test_replicate_rejects_zero_runs () =
  let alloc = tdp_alloc 5 10 in
  Alcotest.check_raises "runs" (Invalid_argument "Engine.replicate: runs < 1")
    (fun () -> ignore (E.replicate ~runs:0 ~seed:1 (oracle_cfg alloc) ~elements:5))

let test_deterministic_given_seed () =
  let alloc = tdp_alloc 30 150 in
  let run () =
    let rng = Rng.create 12345 in
    let truth = G.random rng 30 in
    (E.run rng (oracle_cfg alloc) truth).E.total_latency
  in
  checkf 1e-12 "reproducible" (run ()) (run ())

(* --- deadline-bounded rounds -------------------------------------------- *)

let simulated_cfg ?(votes = 3) ?(err = 0.15) ~deadline ~straggler alloc =
  E.config
    ~source:
      (E.Simulated
         { platform = Platform.create (); rwl = { Rwl.votes; error = W.Uniform err } })
    ~deadline ~straggler ~allocation:alloc ~selection:S.tournament
    ~latency_model:model ()

let test_policy_validation () =
  let alloc = tdp_alloc 10 40 in
  let rng = Rng.create 1 in
  let truth = G.random rng 10 in
  let raises msg deadline straggler =
    Alcotest.check_raises msg (Invalid_argument msg) (fun () ->
        ignore (E.run rng (simulated_cfg ~deadline ~straggler alloc) truth))
  in
  raises "Engine.run: Fixed deadline must be > 0" (E.Fixed 0.0) E.Drop;
  raises "Engine.run: Fixed deadline must be > 0" (E.Fixed (-5.0)) E.Drop;
  raises "Engine.run: Quantile must be in (0, 1]" (E.Quantile 0.0) E.Drop;
  raises "Engine.run: Quantile must be in (0, 1]" (E.Quantile 1.5) E.Drop;
  raises "Engine.run: Reissue retry cap < 0" E.Wait_all (E.Reissue (-1))

let test_zero_question_rounds_keep_trace_dense () =
  (* a selector that refuses to ask anything: every allocation slot must
     still emit a (zero-question, zero-latency) trace record, so trace
     density survives — consumers index records by round *)
  let mute =
    { S.name = "mute"; select = (fun _ _ -> []) }
  in
  let alloc = Allocation.of_round_budgets [ 7; 7; 7 ] in
  let cfg =
    E.config ~pad_to_round_budget:false ~allocation:alloc ~selection:mute
      ~latency_model:model ()
  in
  let rng = Rng.create 63 in
  let truth = G.random rng 6 in
  let r = E.run rng cfg truth in
  check_int "three rounds run" 3 r.E.rounds_run;
  check_int "trace dense" 3 (List.length r.E.trace);
  List.iteri
    (fun i rr ->
      check_int "round_index" i rr.E.round_index;
      check_int "no questions" 0 rr.E.distinct_questions;
      check_int "no padding" 0 rr.E.padded_questions;
      checkf 1e-9 "no latency" 0.0 rr.E.round_latency;
      check_int "candidates untouched" 6 rr.E.candidates_before;
      check_int "still untouched" 6 rr.E.candidates_after)
    r.E.trace;
  check_bool "no singleton" false r.E.singleton;
  checkf 1e-9 "zero latency total" 0.0 r.E.total_latency

let test_wait_all_ignores_straggler_policy () =
  (* under Wait_all nothing is ever cut off, so straggler policy cannot
     matter: bit-identical runs *)
  let alloc = tdp_alloc 20 100 in
  let go straggler =
    let rng = Rng.create 65 in
    let truth = G.random rng 20 in
    E.run rng (simulated_cfg ~deadline:E.Wait_all ~straggler alloc) truth
  in
  let a = go E.Drop and b = go E.Carry_forward in
  check_int "same chosen" a.E.chosen b.E.chosen;
  checkf 1e-12 "same latency" a.E.total_latency b.E.total_latency;
  List.iter2
    (fun ra rb ->
      check_int "no unanswered" 0 ra.E.unanswered_questions;
      check_int "no reissues" 0 rb.E.reissued_questions;
      check_bool "no deadline hit" false ra.E.deadline_hit)
    a.E.trace b.E.trace

let test_deadline_cuts_round_latency () =
  (* a fixed deadline bounds every round's recorded latency *)
  let alloc = tdp_alloc 30 150 in
  let rng = Rng.create 67 in
  let truth = G.random rng 30 in
  let r =
    E.run rng (simulated_cfg ~deadline:(E.Fixed 250.0) ~straggler:E.Drop alloc) truth
  in
  List.iter
    (fun rr ->
      check_bool "bounded" true (rr.E.round_latency <= 250.0 +. 1e-9))
    r.E.trace;
  check_bool "some round hit the deadline" true
    (List.exists (fun rr -> rr.E.deadline_hit) r.E.trace)

let test_carry_forward_reissues () =
  (* deadline short enough that round 1 strands questions: under
     Carry_forward later rounds must repost them; under Drop they must
     not *)
  let alloc = tdp_alloc 60 400 in
  let go straggler =
    let rng = Rng.create 3 in
    let truth = G.random rng 60 in
    E.run rng (simulated_cfg ~deadline:(E.Fixed 200.0) ~straggler alloc) truth
  in
  let dropped = go E.Drop and carried = go E.Carry_forward in
  check_bool "round 1 stranded questions" true
    (match dropped.E.trace with
    | rr :: _ -> rr.E.unanswered_questions > 0
    | [] -> false);
  check_bool "drop never reissues" true
    (List.for_all (fun rr -> rr.E.reissued_questions = 0) dropped.E.trace);
  check_bool "carry reissues" true
    (List.exists (fun rr -> rr.E.reissued_questions > 0) carried.E.trace)

let test_reissue_zero_equals_drop () =
  let go straggler =
    let rng = Rng.create 3 in
    let truth = G.random rng 60 in
    E.run rng
      (simulated_cfg ~deadline:(E.Fixed 200.0) ~straggler (tdp_alloc 60 400))
      truth
  in
  let a = go E.Drop and b = go (E.Reissue 0) in
  check_int "same chosen" a.E.chosen b.E.chosen;
  checkf 1e-12 "same latency" a.E.total_latency b.E.total_latency;
  check_int "same questions" a.E.questions_posted b.E.questions_posted

let test_reissue_cap_bounds_reposts () =
  (* Reissue 1: a pair can be reposted at most once, so the total
     reissued count never exceeds the total newly-stranded count, and
     every reissued pair traces back to an unanswered one *)
  let rng = Rng.create 3 in
  let truth = G.random rng 60 in
  let r =
    E.run rng
      (simulated_cfg ~deadline:(E.Fixed 200.0) ~straggler:(E.Reissue 1)
         (tdp_alloc 60 400))
      truth
  in
  let reissued =
    List.fold_left (fun acc rr -> acc + rr.E.reissued_questions) 0 r.E.trace
  in
  let stranded =
    List.fold_left (fun acc rr -> acc + rr.E.unanswered_questions) 0 r.E.trace
  in
  check_bool "cap respected" true (reissued <= stranded)

let test_dead_carried_pair_is_pruned () =
  (* Regression for the carry-forward bookkeeping: a stranded pair whose
     element is later eliminated must not occupy a slot of a later
     round's budget (the selector's question has to go out instead of a
     repost that can no longer carry information).

     Script (elements ranked 0 best .. 3 worst, perfect workers):
     - round 0 posts (3,2) and (3,1); the quantile deadline resolves to
       L(2) = 100 s, inside the 150 s posting overhead, so both strand.
     - round 1 (budget 1) reposts only (3,2); it completes (L(1) is
       huge) and eliminates 3 — making the still-queued (3,1) dead.
     - round 2 (budget 1) must skip the dead (3,1), reissue nothing,
       and post the selector's (2,0). *)
  let truth = G.of_ranks [| 3; 2; 1; 0 |] in
  let scripted =
    {
      S.name = "scripted";
      select =
        (fun _ input ->
          match input.S.round_index with
          | 0 -> [ (3, 2); (3, 1) ]
          | 2 -> [ (2, 0) ]
          | _ -> []);
    }
  in
  let slow_singles = Model.Custom (fun q -> if q >= 2 then 100.0 else 1e7) in
  let cfg =
    E.config
      ~source:
        (E.Simulated
           { platform = Platform.create (); rwl = { Rwl.votes = 1; error = W.Perfect } })
      ~pad_to_round_budget:false ~deadline:(E.Quantile 1.0)
      ~straggler:E.Carry_forward
      ~allocation:(Allocation.of_round_budgets [ 2; 1; 1 ])
      ~selection:scripted ~latency_model:slow_singles ()
  in
  let rng = Rng.create 29 in
  let r = E.run rng cfg truth in
  match r.E.trace with
  | [ r0; r1; r2 ] ->
      check_int "r0 posts both" 2 r0.E.distinct_questions;
      check_int "r0 strands both" 2 r0.E.unanswered_questions;
      check_bool "r0 deadline hit" true r0.E.deadline_hit;
      check_int "r0 eliminates nobody" 4 r0.E.candidates_after;
      check_int "r1 reissues one" 1 r1.E.reissued_questions;
      check_int "r1's only question is the repost" 1 r1.E.distinct_questions;
      check_int "r1 eliminates element 3" 3 r1.E.candidates_after;
      check_int "r2 reissues nothing (dead pair pruned)" 0
        r2.E.reissued_questions;
      check_int "r2 posts the selector's question" 1 r2.E.distinct_questions;
      check_int "r2 eliminates element 2" 2 r2.E.candidates_after
  | t -> Alcotest.fail (Printf.sprintf "expected 3 rounds, got %d" (List.length t))

let test_run_metrics_instrumentation () =
  (* The engine-section counters must agree with the result/trace the
     same run reports, and enabling them must not change the run. *)
  let module M = Crowdmax_obs.Metrics in
  let cfg =
    simulated_cfg ~deadline:(E.Fixed 200.0) ~straggler:E.Carry_forward
      (tdp_alloc 30 150)
  in
  let go metrics =
    let rng = Rng.create 31 in
    let truth = G.random rng 30 in
    E.run ?metrics rng cfg truth
  in
  let plain = go None in
  let metrics = M.create () in
  let r = go (Some metrics) in
  checkf 1e-12 "metrics don't perturb the run" plain.E.total_latency
    r.E.total_latency;
  check_int "same chosen" plain.E.chosen r.E.chosen;
  let snap = M.snapshot metrics in
  let count name =
    match M.find snap ~section:"engine" name with
    | Some (M.Count n) -> n
    | _ -> Alcotest.fail (Printf.sprintf "missing engine counter %s" name)
  in
  check_int "runs" 1 (count "runs");
  check_int "rounds counted" r.E.rounds_run (count "rounds_run");
  check_int "posted counted" r.E.questions_posted (count "questions_posted");
  let sum f = List.fold_left (fun acc rr -> acc + f rr) 0 r.E.trace in
  check_int "unanswered counted"
    (sum (fun rr -> rr.E.unanswered_questions))
    (count "questions_unanswered");
  check_int "reissued counted"
    (sum (fun rr -> rr.E.reissued_questions))
    (count "questions_reissued");
  check_int "deadline hits counted"
    (List.length (List.filter (fun rr -> rr.E.deadline_hit) r.E.trace))
    (count "deadline_hits");
  (match M.find snap ~section:"engine" "round_latency_seconds" with
  | Some (M.Histogram { total; _ }) ->
      check_int "one histogram entry per round" r.E.rounds_run total
  | _ -> Alcotest.fail "round latency histogram missing");
  check_bool "platform section populated" true
    (match M.find snap ~section:"platform" "batches" with
    | Some (M.Count n) -> n > 0
    | _ -> false)

let test_deadline_replicate_deterministic_across_jobs () =
  (* the tentpole determinism contract extends to finite deadlines and
     straggler queues: aggregates bit-identical for any jobs count *)
  List.iter
    (fun (deadline, straggler) ->
      let cfg = simulated_cfg ~deadline ~straggler (tdp_alloc 25 140) in
      let agg jobs = E.replicate ~jobs ~runs:12 ~seed:71 cfg ~elements:25 in
      check_bool "jobs=1 = jobs=4" true (E.equal_stats (agg 1) (agg 4)))
    [
      (E.Fixed 220.0, E.Carry_forward);
      (E.Quantile 0.9, E.Drop);
      (E.Fixed 200.0, E.Reissue 2);
    ]

let test_plan_config_matches_manual () =
  (* [E.plan_config] is solve-then-config in one step; with a shared
     plan cache it must still build exactly the config the manual
     two-step path does. *)
  let problem = Problem.create ~elements:30 ~budget:180 ~latency:model in
  let cache = Crowdmax_core.Tdp.Cache.create () in
  let planned =
    E.plan_config ~cache ~problem ~selection:S.tournament ()
  in
  let manual = oracle_cfg (tdp_alloc 30 180) in
  Alcotest.check
    Alcotest.(list int)
    "same allocation"
    (Allocation.round_budgets manual.E.allocation)
    (Allocation.round_budgets planned.E.allocation);
  let truth = G.random (Rng.create 91) 30 in
  let a = E.run (Rng.create 92) planned truth in
  let b = E.run (Rng.create 92) manual truth in
  check_bool "identical runs" true
    (Float.equal a.E.total_latency b.E.total_latency
    && a.E.chosen = b.E.chosen
    && a.E.questions_posted = b.E.questions_posted)

(* --- the pinned deadline unit convention -------------------------------- *)

(* [round_deadline] is THE place Quantile patience is priced, and its
   argument is distinct posted questions — the same unit every other
   L(q) consumer uses. The quantile resolves to the k-th distinct
   answer, never to votes * posted raw marketplace questions. *)
let test_round_deadline_convention () =
  let quote deadline posted =
    E.round_deadline ~deadline ~latency_model:model ~posted
  in
  check_bool "Wait_all never cuts" true (quote E.Wait_all 10 = None);
  check_bool "Fixed is verbatim" true (quote (E.Fixed 42.0) 10 = Some 42.0);
  (* model is L(q) = 100 + q: the quote exposes k directly *)
  check_bool "Quantile 1.0 waits for all posted" true
    (quote (E.Quantile 1.0) 10 = Some 110.0);
  check_bool "Quantile 0.25 of 10 is the 3rd answer" true
    (quote (E.Quantile 0.25) 10 = Some 103.0);
  check_bool "k floors at one answer" true
    (quote (E.Quantile 0.1) 1 = Some 101.0)

(* Regression for the votes > 1 unit bug: with 3 votes per question the
   quantile quote must still be L(distinct), not L(3 * distinct) — a
   raw-batch quote would grant every round nearly triple the patience
   the requester's model promises. Every clipped round's recorded cost
   is exactly the distinct-question quote. *)
let test_quantile_quote_ignores_votes () =
  let votes = 3 in
  let cfg =
    simulated_cfg ~votes ~deadline:(E.Quantile 1.0) ~straggler:E.Drop
      (tdp_alloc 30 150)
  in
  let rng = Rng.create 83 in
  let truth = G.random rng 30 in
  let r = E.run rng cfg truth in
  let hits = List.filter (fun rr -> rr.E.deadline_hit) r.E.trace in
  check_bool "some round hit the quantile cutoff" true (List.length hits >= 1);
  List.iter
    (fun rr ->
      let quote = Model.eval model rr.E.distinct_questions in
      let raw_quote = Model.eval model (votes * rr.E.distinct_questions) in
      check_bool "clipped at the distinct-question quote" true
        (Float.equal rr.E.round_latency quote);
      check_bool "a raw-batch quote would have waited longer" true
        (quote < raw_quote))
    hits

let suite =
  [
    ( "engine",
      [
        tc "round_deadline distinct-question convention" `Quick
          test_round_deadline_convention;
        tc "quantile quote ignores votes" `Quick
          test_quantile_quote_ignores_votes;
        tc "plan_config matches manual solve+config" `Quick
          test_plan_config_matches_manual;
        tc "policy validation" `Quick test_policy_validation;
        tc "zero-question rounds keep trace dense" `Quick
          test_zero_question_rounds_keep_trace_dense;
        tc "Wait_all ignores straggler policy" `Quick
          test_wait_all_ignores_straggler_policy;
        tc "deadline cuts round latency" `Quick test_deadline_cuts_round_latency;
        tc "carry-forward reissues stranded questions" `Quick
          test_carry_forward_reissues;
        tc "Reissue 0 = Drop" `Quick test_reissue_zero_equals_drop;
        tc "reissue cap bounds reposts" `Quick test_reissue_cap_bounds_reposts;
        tc "dead carried pair is pruned" `Quick test_dead_carried_pair_is_pruned;
        tc "run metrics instrumentation" `Quick test_run_metrics_instrumentation;
        tc "deadline replicate deterministic across jobs" `Quick
          test_deadline_replicate_deterministic_across_jobs;
        tc "finds the true max" `Quick test_finds_true_max;
        tc "latency matches tDP objective" `Quick test_latency_matches_tdp_prediction;
        tc "trace consistent" `Quick test_trace_is_consistent;
        tc "early stop on singleton" `Quick test_early_stop_on_singleton;
        tc "padding charges full budget" `Quick test_padding_charges_full_budget;
        tc "padding disabled" `Quick test_padding_disabled;
        tc "insufficient allocation" `Quick test_insufficient_allocation_no_singleton;
        tc "single element" `Quick test_single_element_collection;
        tc "heuristics terminate" `Quick test_heuristic_allocations_terminate;
        tc "simulated source with RWL" `Quick test_simulated_source_with_rwl;
        tc "simulated pool source" `Quick test_simulated_pool_source;
        tc "replicate aggregates" `Quick test_replicate_aggregates;
        tc "replicate rejects zero runs" `Quick test_replicate_rejects_zero_runs;
        tc "deterministic given seed" `Quick test_deterministic_given_seed;
      ] );
  ]
