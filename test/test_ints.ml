open Crowdmax_util

let tc = Alcotest.test_case
let check_int = Alcotest.check Alcotest.int

let test_choose2 () =
  check_int "n=0" 0 (Ints.choose2 0);
  check_int "n=1" 0 (Ints.choose2 1);
  check_int "n=2" 1 (Ints.choose2 2);
  check_int "n=5" 10 (Ints.choose2 5);
  check_int "n=500 (paper)" 124750 (Ints.choose2 500);
  check_int "n=1000 (paper intro)" 499500 (Ints.choose2 1000)

let test_ceil_div () =
  check_int "exact" 4 (Ints.ceil_div 12 3);
  check_int "round up" 5 (Ints.ceil_div 13 3);
  check_int "one" 1 (Ints.ceil_div 1 5)

let test_sum () =
  check_int "empty" 0 (Ints.sum []);
  check_int "values" 10 (Ints.sum [ 1; 2; 3; 4 ])

let test_range () =
  Alcotest.check Alcotest.(list int) "basic" [ 2; 3; 4 ] (Ints.range 2 4);
  Alcotest.check Alcotest.(list int) "empty" [] (Ints.range 3 2);
  Alcotest.check Alcotest.(list int) "single" [ 5 ] (Ints.range 5 5)

let test_log2_ceil () =
  check_int "n=1" 0 (Ints.log2_ceil 1);
  check_int "n=2" 1 (Ints.log2_ceil 2);
  check_int "n=3" 2 (Ints.log2_ceil 3);
  check_int "n=8" 3 (Ints.log2_ceil 8);
  check_int "n=9" 4 (Ints.log2_ceil 9);
  check_int "n=0" 0 (Ints.log2_ceil 0)

let suite =
  [
    ( "ints",
      [
        tc "choose2" `Quick test_choose2;
        tc "ceil_div" `Quick test_ceil_div;
        tc "sum" `Quick test_sum;
        tc "range" `Quick test_range;
        tc "log2_ceil" `Quick test_log2_ceil;
      ] );
  ]
