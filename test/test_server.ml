(* The query server and its shared-supply marketplace: conservation
   invariants, single-query/merged-batch equivalences, validation,
   any-jobs determinism and golden pins for the replicate aggregate. *)

module Server = Crowdmax_server.Server
module E = Crowdmax_runtime.Engine
module Platform = Crowdmax_crowd.Platform
module G = Crowdmax_crowd.Ground_truth
module Contention = Crowdmax_latency.Contention
module Model = Crowdmax_latency.Model
module S = Crowdmax_selection.Selection
module Rng = Crowdmax_util.Rng

let tc = Alcotest.test_case
let check_int = Alcotest.check Alcotest.int
let check_bool = Alcotest.check Alcotest.bool
let checkf eps = Alcotest.check (Alcotest.float eps)
let model = Model.linear ~delta:100.0 ~alpha:1.0

(* --- shared-supply marketplace invariants ----------------------------- *)

let events () =
  let log = ref [] in
  let on_complete ~query idx time = log := (query, idx, time) :: !log in
  (log, on_complete)

(* A single shared query is the solo simulator, draw for draw: same
   report, same completion stream, from the same seed. *)
let test_shared_single_query_matches_simulate () =
  let p = Platform.create () in
  List.iter
    (fun (q, deadline) ->
      let solo_log = ref [] in
      let solo =
        Platform.simulate ?deadline p (Rng.create 101) q
          ~on_complete:(fun idx time -> solo_log := (0, idx, time) :: !solo_log)
      in
      let shared_log, on_complete = events () in
      let shared =
        Platform.simulate_shared
          ?deadlines:(Option.map (fun d -> [| d |]) deadline)
          p (Rng.create 101) ~pick:Platform.Fifo ~on_complete [| q |]
      in
      check_int "one report" 1 (Array.length shared);
      check_bool "report bit-identical" true (solo = shared.(0));
      check_bool "completion stream identical" true (!solo_log = !shared_log))
    [ (12, None); (40, None); (40, Some 165.0) ]

(* FIFO with no deadlines assigns query 0's questions first, so k
   queries are one merged batch: global index = offset + local index,
   and the merged completion stream is reproduced exactly (no supply
   duplication, no extra draws). *)
let test_shared_fifo_is_merged_batch () =
  let p = Platform.create () in
  let qs = [| 15; 9; 20 |] in
  let total = Array.fold_left ( + ) 0 qs in
  let offsets = [| 0; qs.(0); qs.(0) + qs.(1) |] in
  let merged_log = ref [] in
  let merged =
    Platform.simulate p (Rng.create 103) total ~on_complete:(fun idx time ->
        merged_log := (idx, time) :: !merged_log)
  in
  let shared_log, on_complete = events () in
  let shared =
    Platform.simulate_shared p (Rng.create 103) ~pick:Platform.Fifo
      ~on_complete qs
  in
  let globalized =
    List.map (fun (query, idx, time) -> (offsets.(query) + idx, time)) !shared_log
  in
  check_bool "merged completion stream" true (globalized = !merged_log);
  Array.iteri
    (fun i r -> check_int "every question answered" qs.(i) r.Platform.completed)
    shared;
  let last =
    Array.fold_left (fun acc r -> Float.max acc r.Platform.latency) 0.0 shared
  in
  check_bool "fleet finishes with the merged batch" true
    (Float.equal last merged.Platform.latency)

(* completed + in_flight + unassigned = q for every query — including
   a withdrawn one whose discards stay in its own in_flight bucket —
   and no answer of a deadlined query lands after its cutoff. *)
let test_shared_conservation_under_deadlines () =
  let p = Platform.create () in
  let qs = [| 25; 30; 18 |] in
  let deadlines = [| 170.0; Float.infinity; 200.0 |] in
  let log, on_complete = events () in
  let reports =
    Platform.simulate_shared ~deadlines p (Rng.create 107)
      ~pick:Platform.Proportional ~on_complete qs
  in
  Array.iteri
    (fun i r ->
      check_int
        (Printf.sprintf "query %d conserves its questions" i)
        qs.(i)
        (r.Platform.completed + r.Platform.in_flight + r.Platform.unassigned);
      if r.Platform.deadline_hit then begin
        check_bool "withdrawn latency is the deadline" true
          (Float.equal r.Platform.latency deadlines.(i));
        check_bool "last completion unclipped (before the cutoff)" true
          (r.Platform.last_completion <= deadlines.(i))
      end)
    reports;
  let counted = Array.make (Array.length qs) 0 in
  List.iter
    (fun (query, _, time) ->
      counted.(query) <- counted.(query) + 1;
      check_bool "no answer after its query's cutoff" true
        (time <= deadlines.(query)))
    !log;
  Array.iteri
    (fun i r -> check_int "on_complete agrees with report" r.Platform.completed
        counted.(i))
    reports;
  check_int "fleet-wide conservation" (Array.fold_left ( + ) 0 qs)
    (Array.fold_left
       (fun acc r ->
         acc + r.Platform.completed + r.Platform.in_flight
         + r.Platform.unassigned)
       0 reports)

(* --- server runs ------------------------------------------------------ *)

let specs () =
  [|
    Server.query_spec ~label:"a" ~elements:30 ~budget:180 ();
    Server.query_spec ~label:"b" ~elements:20 ~budget:60
      ~deadline:(E.Fixed 180.0) ();
    Server.query_spec ~label:"c" ~elements:25 ~budget:140 ~votes:2
      ~deadline:(E.Quantile 0.9) ~admit_step:1 ();
    Server.query_spec ~label:"d" ~elements:15 ~budget:50 ~admit_step:2 ();
  |]

let run_fleet ?contention ?pick seed =
  let specs = specs () in
  let rng = Rng.create seed in
  let truths = Array.map (fun s -> G.random rng s.Server.elements) specs in
  Server.run ?contention ?pick ~platform:(Platform.create ()) ~latency:model
    ~selection:S.tournament rng specs truths

let test_run_sanity () =
  let r = run_fleet 3 in
  check_int "one report per spec" 4 (Array.length r.Server.queries);
  let labels = Array.map (fun q -> q.Server.label) r.Server.queries in
  Alcotest.(check (array string)) "spec order" [| "a"; "b"; "c"; "d" |] labels;
  let mean =
    Array.fold_left (fun acc q -> acc +. q.Server.latency) 0.0 r.Server.queries
    /. 4.0
  in
  checkf 1e-9 "fleet mean is the mean of per-query latencies" mean
    r.Server.fleet_mean_latency;
  check_bool "fairness is a Jain index" true
    (r.Server.fairness > 0.25 && r.Server.fairness <= 1.0 +. 1e-12);
  check_int "oblivious planning never contention-replans" 0
    r.Server.contention_replans;
  Array.iter
    (fun q ->
      check_bool "ran rounds" true (q.Server.rounds >= 1);
      check_bool "sojourn >= own latency" true
        (q.Server.sojourn >= q.Server.latency -. 1e-9);
      check_bool "admitted before finishing" true
        (q.Server.admitted_at >= 0.0))
    r.Server.queries;
  check_bool "steps cover the latest admission" true (r.Server.steps >= 3);
  check_bool "makespan covers every sojourn" true
    (Array.for_all
       (fun q ->
         q.Server.admitted_at +. q.Server.sojourn <= r.Server.makespan +. 1e-9)
       r.Server.queries)

(* With a contention model and real fleet churn (staggered admissions
   and completions shift the foreign load) the effective model changes
   between steps and the re-plan counter fires; the solo arm's stays
   zero by construction. *)
let test_contention_replans_fire () =
  let contention = Contention.create ~base:model ~beta:0.3 in
  let r = run_fleet ~contention 5 in
  check_bool "load shifts re-planned" true (r.Server.contention_replans >= 1)

let test_validation () =
  let reject msg specs truths =
    Alcotest.check_raises msg (Invalid_argument msg) (fun () ->
        ignore
          (Server.run ~platform:(Platform.create ()) ~latency:model
             ~selection:S.tournament (Rng.create 7) specs truths))
  in
  let truth n = G.random (Rng.create 9) n in
  reject "Server.run: no queries" [||] [||];
  reject "Server.run: elements < 2"
    [| Server.query_spec ~elements:1 ~budget:10 () |]
    [| truth 1 |];
  reject "Server.run: budget below Theorem 1's minimum"
    [| Server.query_spec ~elements:10 ~budget:8 () |]
    [| truth 10 |];
  reject "Server.run: votes < 1"
    [| Server.query_spec ~votes:0 ~elements:10 ~budget:20 () |]
    [| truth 10 |];
  reject "Server.run: admit_step < 0"
    [| Server.query_spec ~admit_step:(-1) ~elements:10 ~budget:20 () |]
    [| truth 10 |];
  reject "Server.run: Fixed deadline must be > 0"
    [| Server.query_spec ~deadline:(E.Fixed 0.0) ~elements:10 ~budget:20 () |]
    [| truth 10 |];
  reject "Server.run: Quantile must be in (0, 1]"
    [| Server.query_spec ~deadline:(E.Quantile 1.5) ~elements:10 ~budget:20 () |]
    [| truth 10 |];
  reject "Server.run: truths length mismatch"
    [| Server.query_spec ~elements:10 ~budget:20 () |]
    [||];
  reject "Server.run: ground truth size mismatch"
    [| Server.query_spec ~elements:10 ~budget:20 () |]
    [| truth 11 |]

let replicate ?contention jobs =
  Server.replicate ~jobs ?contention ~platform:(Platform.create ())
    ~latency:model ~selection:S.tournament ~runs:6 ~seed:11 (specs ()) ()

(* The determinism contract: replicate aggregates are bit-identical
   for any jobs count, for both planning arms. *)
let test_replicate_jobs_invariant () =
  List.iter
    (fun contention ->
      let base = replicate ?contention 1 in
      List.iter
        (fun jobs ->
          check_bool
            (Printf.sprintf "jobs=%d matches sequential" jobs)
            true
            (Server.equal_aggregate base (replicate ?contention jobs)))
        [ 2; 4 ])
    [ None; Some (Contention.create ~base:model ~beta:0.3) ]

(* Golden pins: the aggregate of the committed default fleet, as exact
   bit patterns. Shared-mode planning, scheduling or draw-order changes
   show up here; regenerate deliberately if semantics change. *)
let hex v = Printf.sprintf "%Lx" (Int64.bits_of_float v)

let test_replicate_golden () =
  let a = replicate 1 in
  Alcotest.(check (list string))
    "aggregate bit patterns"
    [
      "408227dc92761f8b";
      "4093aa63cf96e9c1";
      "3fee40538ff395e4";
      "3f6a79b36b26b60f";
      "3fe0000000000000";
      "3fe2aaaaaaaaaaab";
    ]
    (List.map hex
       [
         a.Server.mean_fleet_latency;
         a.Server.mean_makespan;
         a.Server.mean_fairness;
         a.Server.mean_throughput;
         a.Server.correct_rate;
         a.Server.singleton_rate;
       ])

let suite =
  [
    ( "server",
      [
        tc "shared single query = simulate" `Quick
          test_shared_single_query_matches_simulate;
        tc "shared fifo = merged batch" `Quick test_shared_fifo_is_merged_batch;
        tc "shared conservation under deadlines" `Quick
          test_shared_conservation_under_deadlines;
        tc "run sanity" `Quick test_run_sanity;
        tc "contention replans fire" `Quick test_contention_replans_fire;
        tc "validation" `Quick test_validation;
        tc "replicate jobs invariant" `Slow test_replicate_jobs_invariant;
        tc "replicate golden pins" `Quick test_replicate_golden;
      ] );
  ]
