module Topk = Crowdmax_topk.Topk
module Problem = Crowdmax_core.Problem
module Model = Crowdmax_latency.Model
module S = Crowdmax_selection.Selection
module G = Crowdmax_crowd.Ground_truth
module Rng = Crowdmax_util.Rng
module Ints = Crowdmax_util.Ints

let tc = Alcotest.test_case
let check_int = Alcotest.check Alcotest.int
let check_bool = Alcotest.check Alcotest.bool

let model = Model.linear ~delta:50.0 ~alpha:0.5

let run ?(seed = 3) ~k ~elements ~budget () =
  let rng = Rng.create seed in
  let truth = G.random rng elements in
  let problem = Problem.create ~elements ~budget ~latency:model in
  (Topk.run rng ~k ~problem ~selection:S.tournament truth, truth)

let test_exact_top_k () =
  let rng = Rng.create 5 in
  for _ = 1 to 25 do
    let n = 3 + Rng.int rng 60 in
    let k = 1 + Rng.int rng (min 6 n) in
    let b = (5 * n) + (20 * k) in
    let seed = Rng.int rng 100000 in
    let r, truth = run ~seed ~k ~elements:n ~budget:b () in
    check_bool "exact" true r.Topk.exact;
    Alcotest.check Alcotest.(list int) "true top-k" (Topk.true_top_k truth k)
      r.Topk.ranking
  done

let test_k1_is_max () =
  let r, truth = run ~k:1 ~elements:40 ~budget:300 () in
  check_int "one element" 1 (List.length r.Topk.ranking);
  check_int "it is the max" (G.max_element truth) (List.hd r.Topk.ranking)

let test_k_equals_n_is_full_sort () =
  let n = 12 in
  let r, truth = run ~k:n ~elements:n ~budget:(Ints.choose2 n * 2) () in
  Alcotest.check Alcotest.(list int) "total order" (Topk.true_top_k truth n)
    r.Topk.ranking

let test_k_larger_than_n_clamped () =
  let n = 8 in
  let r, _ = run ~k:20 ~elements:n ~budget:100 () in
  check_int "clamped to n" n (List.length r.Topk.ranking)

let test_budget_respected () =
  let rng = Rng.create 7 in
  for _ = 1 to 20 do
    let n = 5 + Rng.int rng 50 in
    let k = 1 + Rng.int rng 5 in
    let b = Topk.min_budget ~elements:n ~k + Rng.int rng 300 in
    let seed = Rng.int rng 100000 in
    let r, _ = run ~seed ~k ~elements:n ~budget:b () in
    check_bool "within budget" true (r.Topk.questions_posted <= b)
  done

let test_later_passes_cheaper () =
  (* answer reuse: pass 2's candidate set is tiny compared to c0 *)
  let r, _ = run ~k:3 ~elements:100 ~budget:1000 () in
  match r.Topk.passes with
  | p1 :: p2 :: _ ->
      check_int "pass 1 sees everyone" 100 p1.Topk.candidates;
      check_bool "pass 2 candidate set is small" true (p2.Topk.candidates <= 20);
      check_bool "pass 2 cheaper" true (p2.Topk.questions < p1.Topk.questions)
  | _ -> Alcotest.fail "expected >= 2 passes"

let test_pass_records_consistent () =
  let r, _ = run ~k:4 ~elements:30 ~budget:400 () in
  check_int "k passes" 4 (List.length r.Topk.passes);
  let q = List.fold_left (fun acc p -> acc + p.Topk.questions) 0 r.Topk.passes in
  check_int "questions add up" r.Topk.questions_posted q;
  let l =
    List.fold_left (fun acc p -> acc +. p.Topk.latency) 0.0 r.Topk.passes
  in
  check_bool "latency adds up" true
    (Float.abs (l -. r.Topk.total_latency) < 1e-9);
  List.iteri
    (fun i p -> check_int "pass indices" i p.Topk.pass_index)
    r.Topk.passes

let test_ranking_distinct () =
  let r, _ = run ~k:6 ~elements:25 ~budget:400 () in
  let sorted = List.sort_uniq compare r.Topk.ranking in
  check_int "no duplicates" (List.length r.Topk.ranking) (List.length sorted)

let test_validation () =
  let rng = Rng.create 11 in
  let truth = G.random rng 10 in
  let problem = Problem.create ~elements:10 ~budget:100 ~latency:model in
  Alcotest.check_raises "k < 1" (Invalid_argument "Topk.run: k < 1") (fun () ->
      ignore (Topk.run rng ~k:0 ~problem ~selection:S.tournament truth));
  let truth11 = G.random rng 11 in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Topk.run: ground truth size mismatch") (fun () ->
      ignore (Topk.run rng ~k:2 ~problem ~selection:S.tournament truth11));
  let tight = Problem.create ~elements:10 ~budget:9 ~latency:model in
  Alcotest.check_raises "budget too small"
    (Invalid_argument "Topk.run: budget below the top-k minimum") (fun () ->
      ignore (Topk.run rng ~k:3 ~problem:tight ~selection:S.tournament truth))

let test_min_budget () =
  check_int "k=1" 9 (Topk.min_budget ~elements:10 ~k:1);
  check_int "k=3" 11 (Topk.min_budget ~elements:10 ~k:3);
  check_int "k clamped" 18 (Topk.min_budget ~elements:10 ~k:99)

let test_true_top_k () =
  let truth = G.of_ranks [| 2; 0; 3; 1 |] in
  Alcotest.check Alcotest.(list int) "oracle" [ 2; 0; 3 ] (Topk.true_top_k truth 3)

let test_minimal_budget_degrades_gracefully () =
  (* at the bare validation floor later passes may not afford their
     candidate sets; the run must still produce k distinct elements with
     a correct head (pass 1 is fully funded) and flag itself inexact
     rather than fail *)
  let n = 12 and k = 3 in
  let b = Topk.min_budget ~elements:n ~k in
  let r, truth = run ~k ~elements:n ~budget:b () in
  check_int "k results" k (List.length r.Topk.ranking);
  check_int "head is the max" (G.max_element truth) (List.hd r.Topk.ranking);
  check_int "distinct" k (List.length (List.sort_uniq compare r.Topk.ranking));
  check_bool "within budget" true (r.Topk.questions_posted <= b)

(* Regression for the empty-survivor crash: a rock-paper-scissors
   answerer (0 beats 1, 1 beats 2, 2 beats 0) makes every element of a
   3-clique lose once, so one complete pass empties the survivor set.
   The pass must fall back to scoring — deterministically — and flag
   the result inexact instead of hitting an assert. *)
let test_cycle_falls_back_to_scoring () =
  let cyclic a b =
    let lo = min a b and hi = max a b in
    match (lo, hi) with
    | 0, 1 -> 0
    | 1, 2 -> 1
    | 0, 2 -> 2
    | _ -> Alcotest.fail "unexpected pair"
  in
  let problem = Problem.create ~elements:3 ~budget:30 ~latency:model in
  let truth = G.random (Rng.create 13) 3 in
  let r =
    Topk.run ~answer:cyclic (Rng.create 15) ~k:1 ~problem
      ~selection:S.complete truth
  in
  check_bool "inexact" false r.Topk.exact;
  check_int "still returns a winner" 1 (List.length r.Topk.ranking);
  (* every element has one loss and one direct win; the documented
     tie-break is the lowest id *)
  check_int "deterministic tie-break" 0 (List.hd r.Topk.ranking);
  (* the same cycle must also survive a k > 1 extraction *)
  let r2 =
    Topk.run ~answer:cyclic (Rng.create 15) ~k:3 ~problem
      ~selection:S.complete truth
  in
  check_int "full ranking despite cycles" 3 (List.length r2.Topk.ranking);
  check_int "distinct" 3 (List.length (List.sort_uniq compare r2.Topk.ranking));
  check_bool "inexact" false r2.Topk.exact

let test_answer_validation () =
  let problem = Problem.create ~elements:4 ~budget:20 ~latency:model in
  let truth = G.random (Rng.create 17) 4 in
  Alcotest.check_raises "neither element"
    (Invalid_argument "Topk.run: answer returned neither element") (fun () ->
      ignore
        (Topk.run
           ~answer:(fun _ _ -> 99)
           (Rng.create 19) ~k:1 ~problem ~selection:S.tournament truth))

let suite =
  [
    ( "topk",
      [
        tc "cycle falls back to scoring" `Quick
          test_cycle_falls_back_to_scoring;
        tc "answer validation" `Quick test_answer_validation;
        tc "exact top-k" `Quick test_exact_top_k;
        tc "k=1 is max" `Quick test_k1_is_max;
        tc "k=n is full sort" `Quick test_k_equals_n_is_full_sort;
        tc "k>n clamped" `Quick test_k_larger_than_n_clamped;
        tc "budget respected" `Quick test_budget_respected;
        tc "later passes cheaper" `Quick test_later_passes_cheaper;
        tc "pass records consistent" `Quick test_pass_records_consistent;
        tc "ranking distinct" `Quick test_ranking_distinct;
        tc "validation" `Quick test_validation;
        tc "min budget" `Quick test_min_budget;
        tc "true top-k oracle" `Quick test_true_top_k;
        tc "minimal budget degrades gracefully" `Quick test_minimal_budget_degrades_gracefully;
      ] );
  ]
