module H = Crowdmax_core.Heuristics
module Allocation = Crowdmax_core.Allocation
module Problem = Crowdmax_core.Problem
module Ints = Crowdmax_util.Ints
module Rng = Crowdmax_util.Rng

let tc = Alcotest.test_case
let check_int = Alcotest.check Alcotest.int
let check_bool = Alcotest.check Alcotest.bool
let budgets a = Allocation.round_budgets a

(* Section 5.1 worked example: c0 = 24, b = 51. *)
let test_he_paper_example () =
  Alcotest.check Alcotest.(list int) "HE (Fig 10a)" [ 12; 6; 33 ]
    (budgets (H.he ~elements:24 ~budget:51))

let test_hf_paper_example () =
  Alcotest.check Alcotest.(list int) "HF (Fig 10b)" [ 44; 4; 2; 1 ]
    (budgets (H.hf ~elements:24 ~budget:51))

let test_uhe_paper_example () =
  Alcotest.check Alcotest.(list int) "uHE" [ 17; 17; 17 ]
    (budgets (H.uhe ~elements:24 ~budget:51))

let test_uhf_paper_example () =
  Alcotest.check Alcotest.(list int) "uHF" [ 13; 13; 13; 12 ]
    (budgets (H.uhf ~elements:24 ~budget:51))

let test_uhf_fig13a_example () =
  (* Sec. 6.4: for 250 elements and b = 4000, uHF generates
     (1000, 1000, 1000, 1000) *)
  Alcotest.check Alcotest.(list int) "paper example" [ 1000; 1000; 1000; 1000 ]
    (budgets (H.uhf ~elements:250 ~budget:4000))

let test_all_spend_full_budget () =
  (* Sec. 6.5: the heuristics always use the whole budget *)
  let rng = Rng.create 3 in
  for _ = 1 to 100 do
    let c0 = 2 + Rng.int rng 200 in
    let b = c0 - 1 + Rng.int rng 2000 in
    List.iter
      (fun H.{ name; allocate } ->
        let a = allocate ~elements:c0 ~budget:b in
        check_int (name ^ " spends all") b (Allocation.questions_total a))
      H.all
  done

let test_round_budgets_positive () =
  let rng = Rng.create 5 in
  for _ = 1 to 100 do
    let c0 = 2 + Rng.int rng 100 in
    let b = c0 - 1 + Rng.int rng 500 in
    List.iter
      (fun H.{ name = _; allocate } ->
        let a = allocate ~elements:c0 ~budget:b in
        List.iter
          (fun q -> check_bool "positive round" true (q >= 1))
          (Allocation.round_budgets a))
      H.all
  done

let test_single_element () =
  List.iter
    (fun H.{ name; allocate } ->
      check_int (name ^ " empty for c0=1") 0
        (Allocation.rounds (allocate ~elements:1 ~budget:0)))
    H.all

let test_two_elements_min_budget () =
  List.iter
    (fun H.{ name; allocate } ->
      let a = allocate ~elements:2 ~budget:1 in
      check_int (name ^ " single question") 1 (Allocation.questions_total a))
    H.all

let test_exact_min_budget_is_halving () =
  (* with b = c0 - 1, HE reduces to pure halving; HF does too when c0 is
     a power of two, and otherwise bridges to the nearest power of two
     first - either way spending exactly c0 - 1 questions *)
  List.iter
    (fun c0 ->
      Alcotest.check Alcotest.(list int) "HE halving" (H.halving_rounds c0)
        (budgets (H.he ~elements:c0 ~budget:(c0 - 1)));
      check_int "HF minimal spend" (c0 - 1)
        (Allocation.questions_total (H.hf ~elements:c0 ~budget:(c0 - 1))))
    [ 2; 3; 7; 16; 33; 100 ];
  List.iter
    (fun c0 ->
      Alcotest.check Alcotest.(list int) "HF halving (power of two)"
        (H.halving_rounds c0)
        (budgets (H.hf ~elements:c0 ~budget:(c0 - 1))))
    [ 2; 4; 16; 64 ]

let test_he_last_round_is_heavy () =
  (* HE's final round gets at least as much as a complete tournament of
     the remaining candidates would need *)
  let a = H.he ~elements:100 ~budget:1000 in
  let bs = budgets a in
  let last = List.nth bs (List.length bs - 1) in
  check_bool "last round dominant" true
    (List.for_all (fun q -> q <= last) bs)

let test_hf_first_round_is_heavy () =
  let a = H.hf ~elements:100 ~budget:1000 in
  match budgets a with
  | first :: rest ->
      check_bool "first round dominant" true (List.for_all (fun q -> q <= first) rest)
  | [] -> Alcotest.fail "empty HF allocation"

let test_uniform_variants_match_round_counts () =
  let rng = Rng.create 7 in
  for _ = 1 to 50 do
    let c0 = 2 + Rng.int rng 100 in
    let b = c0 - 1 + Rng.int rng 1000 in
    check_int "uHE rounds = HE rounds"
      (Allocation.rounds (H.he ~elements:c0 ~budget:b))
      (Allocation.rounds (H.uhe ~elements:c0 ~budget:b));
    check_int "uHF rounds = HF rounds"
      (Allocation.rounds (H.hf ~elements:c0 ~budget:b))
      (Allocation.rounds (H.uhf ~elements:c0 ~budget:b))
  done

let test_infeasible_rejected () =
  List.iter
    (fun H.{ name = _; allocate } ->
      Alcotest.check_raises "Thm 1"
        (Invalid_argument "Heuristics: infeasible instance (Theorem 1)")
        (fun () -> ignore (allocate ~elements:10 ~budget:8)))
    H.all

let test_halving_rounds () =
  Alcotest.check Alcotest.(list int) "c=8" [ 4; 2; 1 ] (H.halving_rounds 8);
  Alcotest.check Alcotest.(list int) "c=7 (byes)" [ 3; 2; 1 ] (H.halving_rounds 7);
  Alcotest.check Alcotest.(list int) "c=1" [] (H.halving_rounds 1);
  (* pure halving always spends exactly c - 1 questions *)
  for c = 1 to 60 do
    check_int "sum = c-1" (c - 1) (Ints.sum (H.halving_rounds c))
  done

let test_feasible_for_engine () =
  (* every heuristic allocation, when played with tournament selection,
     can reach a single candidate: total budget >= c0 - 1 by
     construction, and prefix budgets never strand the run. Here we just
     assert the budget arithmetic of HE/HF prefixes. *)
  let a = H.he ~elements:24 ~budget:51 in
  check_bool "within budget" true (Allocation.within_budget a 51);
  check_bool "covers eliminations" true
    (Allocation.questions_total a >= 23)

let suite =
  [
    ( "heuristics",
      [
        tc "HE paper example" `Quick test_he_paper_example;
        tc "HF paper example" `Quick test_hf_paper_example;
        tc "uHE paper example" `Quick test_uhe_paper_example;
        tc "uHF paper example" `Quick test_uhf_paper_example;
        tc "uHF Fig 13(a) example" `Quick test_uhf_fig13a_example;
        tc "full budget spent" `Quick test_all_spend_full_budget;
        tc "round budgets positive" `Quick test_round_budgets_positive;
        tc "single element" `Quick test_single_element;
        tc "two elements" `Quick test_two_elements_min_budget;
        tc "min budget = halving" `Quick test_exact_min_budget_is_halving;
        tc "HE heavy end" `Quick test_he_last_round_is_heavy;
        tc "HF heavy front" `Quick test_hf_first_round_is_heavy;
        tc "uniform round counts" `Quick test_uniform_variants_match_round_counts;
        tc "infeasible rejected" `Quick test_infeasible_rejected;
        tc "halving rounds" `Quick test_halving_rounds;
        tc "engine feasibility" `Quick test_feasible_for_engine;
      ] );
  ]
