module U = Crowdmax_graph.Undirected
module MI = Crowdmax_graph.Max_ind
module Rng = Crowdmax_util.Rng

let tc = Alcotest.test_case
let check_int = Alcotest.check Alcotest.int
let check_bool = Alcotest.check Alcotest.bool

let test_empty_graph () =
  let g = U.create 4 in
  Alcotest.check Alcotest.(list int) "all nodes" [ 0; 1; 2; 3 ] (MI.exact g)

let test_complete_graph () =
  let g = U.create 4 in
  for i = 0 to 3 do
    for j = i + 1 to 3 do
      U.add_edge g i j
    done
  done;
  check_int "clique -> 1" 1 (List.length (MI.exact g))

let test_path () =
  (* path 0-1-2-3-4: maxIND = {0,2,4} *)
  let g = U.of_edges 5 [ (0, 1); (1, 2); (2, 3); (3, 4) ] in
  Alcotest.check Alcotest.(list int) "alternating" [ 0; 2; 4 ] (MI.exact g)

let test_cycle4 () =
  (* paper Fig. 8(a): a 4-cycle has two maxRC sets of size 2 *)
  let g = U.of_edges 4 [ (0, 1); (1, 2); (2, 3); (3, 0) ] in
  let s = MI.exact g in
  check_int "size 2" 2 (List.length s);
  check_bool "valid" true (U.is_independent g s)

let test_star () =
  let g = U.of_edges 5 [ (0, 1); (0, 2); (0, 3); (0, 4) ] in
  Alcotest.check Alcotest.(list int) "leaves" [ 1; 2; 3; 4 ] (MI.exact g)

let test_two_triangles () =
  (* paper Fig. 1-style: disjoint cliques contribute one node each *)
  let g = U.of_edges 6 [ (0, 1); (1, 2); (0, 2); (3, 4); (4, 5); (3, 5) ] in
  check_int "one per clique" 2 (List.length (MI.exact g))

let test_exact_is_independent () =
  let rng = Rng.create 3 in
  for _ = 1 to 30 do
    let n = 3 + Rng.int rng 10 in
    let edges = ref [] in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        if Rng.bernoulli rng 0.4 then edges := (i, j) :: !edges
      done
    done;
    let g = U.of_edges n !edges in
    let s = MI.exact g in
    check_bool "independent" true (U.is_independent g s)
  done

let test_greedy_is_independent_and_maximal () =
  let rng = Rng.create 5 in
  for _ = 1 to 30 do
    let n = 3 + Rng.int rng 20 in
    let edges = ref [] in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        if Rng.bernoulli rng 0.3 then edges := (i, j) :: !edges
      done
    done;
    let g = U.of_edges n !edges in
    let s = MI.greedy g in
    check_bool "independent" true (U.is_independent g s);
    check_bool "not beatable by exact - sanity" true
      (List.length s <= List.length (MI.exact g))
  done

let test_max_rc_matches_max_ind () =
  (* Theorem 2: |maxRC| = |maxIND| on every graph (small exhaustive check) *)
  let rng = Rng.create 7 in
  for _ = 1 to 25 do
    let n = 2 + Rng.int rng 5 in
    let edges = ref [] in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        if Rng.bernoulli rng 0.5 then edges := (i, j) :: !edges
      done
    done;
    let g = U.of_edges n !edges in
    check_int "Thm 2" (List.length (MI.exact g)) (List.length (MI.max_rc_brute g))
  done

let test_max_rc_brute_rejects_large () =
  let g = U.create 10 in
  Alcotest.check_raises "too big" (Invalid_argument "Max_ind.max_rc_brute: too many nodes")
    (fun () -> ignore (MI.max_rc_brute g))

let suite =
  [
    ( "max_ind",
      [
        tc "empty graph" `Quick test_empty_graph;
        tc "complete graph" `Quick test_complete_graph;
        tc "path" `Quick test_path;
        tc "4-cycle (paper Fig 8)" `Quick test_cycle4;
        tc "star" `Quick test_star;
        tc "two triangles" `Quick test_two_triangles;
        tc "exact is independent" `Quick test_exact_is_independent;
        tc "greedy independent+bounded" `Quick test_greedy_is_independent_and_maximal;
        tc "maxRC = maxIND (Thm 2)" `Slow test_max_rc_matches_max_ind;
        tc "brute force size guard" `Quick test_max_rc_brute_rejects_large;
      ] );
  ]
