module Rwl = Crowdmax_crowd.Rwl
module W = Crowdmax_crowd.Worker
module G = Crowdmax_crowd.Ground_truth
module Rng = Crowdmax_util.Rng

let tc = Alcotest.test_case
let check_int = Alcotest.check Alcotest.int
let check_bool = Alcotest.check Alcotest.bool

let all_pairs n =
  List.concat
    (List.init n (fun i -> List.init (n - 1 - i) (fun k -> (i, i + 1 + k))))

let test_perfect_workers_exact () =
  let rng = Rng.create 3 in
  let truth = G.random rng 12 in
  let qs = all_pairs 12 in
  let o = Rwl.resolve rng { Rwl.votes = 1; error = W.Perfect } ~truth qs in
  Alcotest.check (Alcotest.float 1e-9) "accuracy 1" 1.0 o.Rwl.accuracy;
  check_int "no flips" 0 o.Rwl.vote_flips;
  check_int "no cycle repairs" 0 o.Rwl.cycle_edges_flipped;
  check_int "raw = asked" (List.length qs) o.Rwl.raw_questions

let test_output_one_answer_per_question () =
  let rng = Rng.create 5 in
  let truth = G.random rng 8 in
  let qs = all_pairs 8 in
  let o = Rwl.resolve rng { Rwl.votes = 3; error = W.Uniform 0.3 } ~truth qs in
  check_int "same count" (List.length qs) (List.length o.Rwl.answers);
  (* each output answer orients exactly its input question *)
  let normalize (a, b) = if a < b then (a, b) else (b, a) in
  let asked = List.sort compare (List.map normalize qs) in
  let answered = List.sort compare (List.map normalize o.Rwl.answers) in
  Alcotest.check Alcotest.(list (pair int int)) "same pairs" asked answered

let test_conflict_free_under_heavy_errors () =
  (* the central contract: output is acyclic no matter how bad the
     raw answers are *)
  let rng = Rng.create 7 in
  for trial = 1 to 30 do
    let n = 4 + Rng.int rng 10 in
    let truth = G.random rng n in
    let o =
      Rwl.resolve rng
        { Rwl.votes = 1; error = W.Uniform 0.5 }
        ~truth (all_pairs n)
    in
    check_bool
      (Printf.sprintf "trial %d acyclic" trial)
      true
      (Rwl.is_conflict_free ~n o.Rwl.answers)
  done

let test_raw_question_accounting () =
  let rng = Rng.create 9 in
  let truth = G.random rng 6 in
  let o = Rwl.resolve rng { Rwl.votes = 5; error = W.Perfect } ~truth (all_pairs 6) in
  check_int "votes x questions" (5 * 15) o.Rwl.raw_questions

let test_majority_vote_improves_accuracy () =
  let rng = Rng.create 11 in
  let truth = G.random rng 10 in
  let qs = all_pairs 10 in
  let acc votes =
    let total = ref 0.0 in
    for _ = 1 to 30 do
      let o = Rwl.resolve rng { Rwl.votes; error = W.Uniform 0.25 } ~truth qs in
      total := !total +. o.Rwl.accuracy
    done;
    !total /. 30.0
  in
  check_bool "5 votes beat 1" true (acc 5 > acc 1)

let test_empty_input () =
  let rng = Rng.create 13 in
  let truth = G.random rng 4 in
  let o = Rwl.resolve rng Rwl.default_config ~truth [] in
  check_int "no answers" 0 (List.length o.Rwl.answers);
  Alcotest.check (Alcotest.float 1e-9) "vacuous accuracy" 1.0 o.Rwl.accuracy

let test_votes_validation () =
  let rng = Rng.create 15 in
  let truth = G.random rng 4 in
  Alcotest.check_raises "votes < 1" (Invalid_argument "Rwl.resolve: votes < 1")
    (fun () ->
      ignore (Rwl.resolve rng { Rwl.votes = 0; error = W.Perfect } ~truth []))

let test_self_comparison_rejected () =
  let rng = Rng.create 17 in
  let truth = G.random rng 4 in
  Alcotest.check_raises "self" (Invalid_argument "Rwl.resolve: self-comparison")
    (fun () ->
      ignore (Rwl.resolve rng Rwl.default_config ~truth [ (2, 2) ]))

let test_is_conflict_free () =
  check_bool "chain ok" true (Rwl.is_conflict_free ~n:3 [ (0, 1); (1, 2) ]);
  check_bool "triangle cycle" false
    (Rwl.is_conflict_free ~n:3 [ (0, 1); (1, 2); (2, 0) ])

let test_cycle_resolution_flips_some_edge () =
  (* force a cyclic vote pattern often enough that resolution must act:
     50% error on a triangle, many trials *)
  let rng = Rng.create 19 in
  let truth = G.random rng 3 in
  let saw_flip = ref false in
  for _ = 1 to 200 do
    let o =
      Rwl.resolve rng
        { Rwl.votes = 1; error = W.Uniform 0.5 }
        ~truth
        [ (0, 1); (1, 2); (0, 2) ]
    in
    if o.Rwl.cycle_edges_flipped > 0 then saw_flip := true;
    check_bool "always acyclic" true (Rwl.is_conflict_free ~n:3 o.Rwl.answers)
  done;
  check_bool "resolution exercised" true !saw_flip

(* The tie-bias regression. With 2 votes and 50% worker error, exactly
   half of all questions split 1-1, and a split must fall to either
   element with equal probability: the historical bug awarded every
   tie to the second element, making the first win only ~25% of the
   time instead of ~50%. Seed-averaged so the check is about the
   estimator, not one lucky stream. *)
let test_even_vote_tie_fairness () =
  let trials = 2000 in
  let first_wins = ref 0 in
  for seed = 1 to trials do
    let rng = Rng.create seed in
    let truth = G.of_ranks [| 1; 0 |] in
    let o =
      Rwl.resolve rng { Rwl.votes = 2; error = W.Uniform 0.5 } ~truth [ (0, 1) ]
    in
    match o.Rwl.answers with
    | [ (w, _) ] -> if w = 0 then incr first_wins
    | _ -> Alcotest.fail "expected one answer"
  done;
  let frac = float_of_int !first_wins /. float_of_int trials in
  check_bool
    (Printf.sprintf "first element wins %.3f of ties (want ~0.5)" frac)
    true
    (frac > 0.45 && frac < 0.55)

let test_odd_votes_never_tie () =
  (* an odd vote count cannot split evenly, so resolve must not consume
     any tie-break draws: two rngs from the same seed, one used for an
     odd-vote resolve, must stay in lockstep *)
  let rng1 = Rng.create 31 and rng2 = Rng.create 31 in
  let truth = G.random rng1 8 in
  let _ = G.random rng2 8 in
  let qs = all_pairs 8 in
  let o1 = Rwl.resolve rng1 { Rwl.votes = 3; error = W.Uniform 0.3 } ~truth qs in
  let o2 = Rwl.resolve rng2 { Rwl.votes = 3; error = W.Uniform 0.3 } ~truth qs in
  Alcotest.check
    Alcotest.(list (pair int int))
    "identical streams" o1.Rwl.answers o2.Rwl.answers;
  check_int "same draw position" (Rng.int rng1 1000000) (Rng.int rng2 1000000)

let test_partial_votes_zero_is_unanswered () =
  let rng = Rng.create 33 in
  let truth = G.random rng 6 in
  let qs = [ (0, 1); (2, 3); (4, 5) ] in
  let o =
    Rwl.resolve ~votes_received:[| 3; 0; 2 |] rng
      { Rwl.votes = 3; error = W.Perfect }
      ~truth qs
  in
  check_int "two answered" 2 (List.length o.Rwl.answers);
  Alcotest.check
    Alcotest.(list (pair int int))
    "middle question unanswered" [ (2, 3) ] o.Rwl.unanswered;
  (* every repetition was posted, whether or not it came back *)
  check_int "raw counts posted repetitions" 9 o.Rwl.raw_questions;
  Alcotest.check (Alcotest.float 1e-9) "accuracy over answered only" 1.0
    o.Rwl.accuracy

let test_all_votes_received_matches_plain () =
  let run f =
    let rng = Rng.create 35 in
    let truth = G.random rng 7 in
    f rng truth
  in
  let qs = all_pairs 7 in
  let cfg = { Rwl.votes = 3; error = W.Uniform 0.2 } in
  let plain = run (fun rng truth -> Rwl.resolve rng cfg ~truth qs) in
  let full =
    run (fun rng truth ->
        Rwl.resolve
          ~votes_received:(Array.make (List.length qs) 3)
          rng cfg ~truth qs)
  in
  Alcotest.check
    Alcotest.(list (pair int int))
    "full votes_received = no votes_received" plain.Rwl.answers full.Rwl.answers

let test_votes_received_validation () =
  let rng = Rng.create 37 in
  let truth = G.random rng 4 in
  let cfg = { Rwl.votes = 3; error = W.Perfect } in
  Alcotest.check_raises "wrong length"
    (Invalid_argument "Rwl.resolve: votes_received length mismatch") (fun () ->
      ignore (Rwl.resolve ~votes_received:[| 3 |] rng cfg ~truth [ (0, 1); (2, 3) ]));
  Alcotest.check_raises "negative entry"
    (Invalid_argument "Rwl.resolve: votes_received out of [0, votes]")
    (fun () ->
      ignore (Rwl.resolve ~votes_received:[| -1 |] rng cfg ~truth [ (0, 1) ]));
  Alcotest.check_raises "entry above votes"
    (Invalid_argument "Rwl.resolve: votes_received out of [0, votes]")
    (fun () ->
      ignore (Rwl.resolve ~votes_received:[| 4 |] rng cfg ~truth [ (0, 1) ]))

module WP = Crowdmax_crowd.Worker_pool

let mk_pool ?(workers = 40) ?(good_fraction = 0.5) ?(good = 0.95) ?(bad = 0.55)
    rng =
  WP.create rng ~workers ~good_fraction ~good_accuracy:good ~bad_accuracy:bad

let test_pool_conflict_free () =
  let rng = Rng.create 21 in
  for _ = 1 to 15 do
    let n = 4 + Rng.int rng 8 in
    let truth = G.random rng n in
    let pool = mk_pool ~good_fraction:0.3 ~bad:0.5 rng in
    let o = Rwl.resolve_pool rng ~pool ~votes:3 ~truth (all_pairs n) in
    check_bool "acyclic" true (Rwl.is_conflict_free ~n o.Rwl.answers);
    check_int "one per question" (List.length (all_pairs n))
      (List.length o.Rwl.answers)
  done

let test_pool_weighting_beats_majority () =
  (* a pool that's mostly spammers: weighted consensus should recover
     at least as many true answers as anonymous majority voting *)
  let rng = Rng.create 23 in
  let weighted_acc = ref 0.0 and majority_acc = ref 0.0 in
  for _ = 1 to 10 do
    let n = 10 in
    let truth = G.random rng n in
    let pool = mk_pool ~good_fraction:0.35 ~good:0.97 ~bad:0.5 rng in
    let qs = all_pairs n in
    let ow = Rwl.resolve_pool rng ~pool ~votes:9 ~truth qs in
    let om =
      Rwl.resolve rng { Rwl.votes = 9; error = W.Uniform 0.33 } ~truth qs
    in
    weighted_acc := !weighted_acc +. ow.Rwl.accuracy;
    majority_acc := !majority_acc +. om.Rwl.accuracy
  done;
  check_bool "weighting helps against spam" true
    (!weighted_acc >= !majority_acc -. 0.2)

let test_pool_empty_questions () =
  let rng = Rng.create 25 in
  let truth = G.random rng 4 in
  let pool = mk_pool rng in
  let o = Rwl.resolve_pool rng ~pool ~votes:3 ~truth [] in
  check_int "no answers" 0 (List.length o.Rwl.answers);
  Alcotest.check (Alcotest.float 1e-9) "vacuous" 1.0 o.Rwl.accuracy

let test_pool_validation () =
  let rng = Rng.create 27 in
  let truth = G.random rng 4 in
  let pool = mk_pool rng in
  Alcotest.check_raises "votes" (Invalid_argument "Rwl.resolve_pool: votes < 1")
    (fun () -> ignore (Rwl.resolve_pool rng ~pool ~votes:0 ~truth []));
  Alcotest.check_raises "self" (Invalid_argument "Rwl.resolve_pool: self-comparison")
    (fun () -> ignore (Rwl.resolve_pool rng ~pool ~votes:3 ~truth [ (1, 1) ]))

let test_pool_raw_accounting () =
  let rng = Rng.create 29 in
  let truth = G.random rng 5 in
  let pool = mk_pool rng in
  let o = Rwl.resolve_pool rng ~pool ~votes:5 ~truth (all_pairs 5) in
  check_int "votes x questions" (5 * 10) o.Rwl.raw_questions

let test_pool_partial_votes () =
  let rng = Rng.create 39 in
  let truth = G.random rng 6 in
  let pool = mk_pool ~good_fraction:1.0 ~good:0.99 rng in
  let qs = [ (0, 1); (2, 3); (4, 5) ] in
  let o =
    Rwl.resolve_pool ~votes_received:[| 3; 0; 1 |] rng ~pool ~votes:3 ~truth qs
  in
  check_int "two answered" 2 (List.length o.Rwl.answers);
  Alcotest.check
    Alcotest.(list (pair int int))
    "zero-vote question unanswered" [ (2, 3) ] o.Rwl.unanswered;
  check_int "raw counts posted repetitions" 9 o.Rwl.raw_questions

let test_pool_all_zero_votes () =
  let rng = Rng.create 41 in
  let truth = G.random rng 4 in
  let pool = mk_pool rng in
  let qs = [ (0, 1); (2, 3) ] in
  let o = Rwl.resolve_pool ~votes_received:[| 0; 0 |] rng ~pool ~votes:3 ~truth qs in
  check_int "nothing answered" 0 (List.length o.Rwl.answers);
  Alcotest.check
    Alcotest.(list (pair int int))
    "everything unanswered" qs o.Rwl.unanswered;
  Alcotest.check (Alcotest.float 1e-9) "vacuous accuracy" 1.0 o.Rwl.accuracy

let suite =
  [
    ( "rwl",
      [
        tc "even-vote tie fairness" `Slow test_even_vote_tie_fairness;
        tc "odd votes never consult tie-break rng" `Quick test_odd_votes_never_tie;
        tc "partial votes: zero received is unanswered" `Quick
          test_partial_votes_zero_is_unanswered;
        tc "full votes_received matches plain resolve" `Quick
          test_all_votes_received_matches_plain;
        tc "votes_received validation" `Quick test_votes_received_validation;
        tc "pool: partial votes" `Quick test_pool_partial_votes;
        tc "pool: all votes cut off" `Quick test_pool_all_zero_votes;
        tc "pool: conflict-free" `Quick test_pool_conflict_free;
        tc "pool: weighting vs majority" `Slow test_pool_weighting_beats_majority;
        tc "pool: empty questions" `Quick test_pool_empty_questions;
        tc "pool: validation" `Quick test_pool_validation;
        tc "pool: raw accounting" `Quick test_pool_raw_accounting;
        tc "perfect workers exact" `Quick test_perfect_workers_exact;
        tc "one answer per question" `Quick test_output_one_answer_per_question;
        tc "conflict-free under heavy errors" `Quick test_conflict_free_under_heavy_errors;
        tc "raw question accounting" `Quick test_raw_question_accounting;
        tc "majority vote improves accuracy" `Slow test_majority_vote_improves_accuracy;
        tc "empty input" `Quick test_empty_input;
        tc "votes validation" `Quick test_votes_validation;
        tc "self comparison rejected" `Quick test_self_comparison_rejected;
        tc "is_conflict_free" `Quick test_is_conflict_free;
        tc "cycle resolution exercised" `Quick test_cycle_resolution_flips_some_edge;
      ] );
  ]
