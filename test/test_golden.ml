(* Golden values: deterministic quantities pinned to what the paper
   reports (or to first-run values of this implementation, where the
   paper gives only curves). Any change to these is a behaviour change
   to the reproduction and must be deliberate. *)

module Model = Crowdmax_latency.Model
module Problem = Crowdmax_core.Problem
module Tdp = Crowdmax_core.Tdp
module Allocation = Crowdmax_core.Allocation
module Heuristics = Crowdmax_core.Heuristics
module T = Crowdmax_tournament.Tournament

let tc = Alcotest.test_case
let check_int = Alcotest.check Alcotest.int
let check_ints = Alcotest.check Alcotest.(list int)
let mturk = Model.paper_mturk

let tdp c0 b = Tdp.solve (Problem.create ~elements:c0 ~budget:b ~latency:mturk)

(* Sec. 6.5: "tDP produces the same allocation, (2250, 1225), for any
   budget available, after 4000 questions, i.e., tDP only uses 3475". *)
let test_paper_654_allocation () =
  List.iter
    (fun b ->
      let s = tdp 500 b in
      check_ints
        (Printf.sprintf "allocation at b=%d" b)
        [ 2250; 1225 ]
        (Allocation.round_budgets s.Tdp.allocation);
      check_int "questions used" 3475 s.Tdp.questions_used)
    [ 4000; 8000; 16000; 32000 ]

(* Sec. 6.4: "for 250 elements, uHF generates allocation
   (1000, 1000, 1000, 1000), while tDP generates allocation (884, 465)". *)
let test_paper_644_allocations () =
  check_ints "tDP at c0=250 b=4000" [ 884; 465 ]
    (Allocation.round_budgets (tdp 250 4000).Tdp.allocation);
  check_ints "uHF at c0=250 b=4000"
    [ 1000; 1000; 1000; 1000 ]
    (Allocation.round_budgets (Heuristics.uhf ~elements:250 ~budget:4000))

(* Fig. 14(b) limit points under L = 239 + 0.06 q^p. *)
let test_fig14b_limit_points () =
  let used p b =
    (Tdp.solve
       (Problem.create ~elements:500 ~budget:b
          ~latency:(Model.power ~delta:239.0 ~alpha:0.06 ~p)))
      .Tdp.questions_used
  in
  check_int "p=1.4 limit" 797 (used 1.4 16000);
  check_int "p=1.8 limit" 565 (used 1.8 16000)

(* Fig. 2 / Fig. 3 / Fig. 5 tournament-graph arithmetic. *)
let test_paper_graph_arithmetic () =
  check_int "G_T(20,5)" 30 (T.questions 20 5);
  check_int "G_T(24,5)" 46 (T.questions 24 5);
  check_int "Q(100,25)" 150 (T.questions 100 25);
  check_int "Q(50,25)" 25 (T.questions 50 25);
  check_int "choose2 500" 124750 (Problem.max_useful_budget ~elements:500);
  check_int "choose2 1000" 499500 (Problem.max_useful_budget ~elements:1000)

(* Sec. 5.1 worked example, all four heuristics. *)
let test_paper_51_heuristics () =
  let budgets h = Allocation.round_budgets (h ~elements:24 ~budget:51) in
  check_ints "HE" [ 12; 6; 33 ] (budgets Heuristics.he);
  check_ints "HF" [ 44; 4; 2; 1 ] (budgets Heuristics.hf);
  check_ints "uHE" [ 17; 17; 17 ] (budgets Heuristics.uhe);
  check_ints "uHF" [ 13; 13; 13; 12 ] (budgets Heuristics.uhf)

(* Sec. 2.2 example: with L = 100 + q, (40,8,1) costs 308 and
   (40,20,5,1) costs 360; the optimum at b=108 is 305 via (40,10,1). *)
let test_paper_22_example () =
  let l = Model.linear ~delta:100.0 ~alpha:1.0 in
  let s = Tdp.solve (Problem.create ~elements:40 ~budget:108 ~latency:l) in
  Alcotest.check (Alcotest.float 1e-9) "optimal latency" 305.0 s.Tdp.latency;
  check_ints "optimal sequence" [ 40; 10; 1 ] s.Tdp.sequence;
  Alcotest.check (Alcotest.float 1e-9) "(40,8,1) = 308" 308.0
    (Allocation.predicted_latency (Allocation.of_count_sequence [ 40; 8; 1 ]) l);
  Alcotest.check (Alcotest.float 1e-9) "(40,20,5,1) = 360" 360.0
    (Allocation.predicted_latency
       (Allocation.of_count_sequence [ 40; 20; 5; 1 ])
       l)

let suite =
  [
    ( "golden",
      [
        tc "Sec 6.5 budget limiting" `Quick test_paper_654_allocation;
        tc "Sec 6.4 allocations" `Quick test_paper_644_allocations;
        tc "Fig 14(b) limit points" `Quick test_fig14b_limit_points;
        tc "tournament arithmetic" `Quick test_paper_graph_arithmetic;
        tc "Sec 5.1 heuristics" `Quick test_paper_51_heuristics;
        tc "Sec 2.2 example" `Quick test_paper_22_example;
      ] );
  ]
