(* Golden values: deterministic quantities pinned to what the paper
   reports (or to first-run values of this implementation, where the
   paper gives only curves). Any change to these is a behaviour change
   to the reproduction and must be deliberate. *)

module Model = Crowdmax_latency.Model
module Problem = Crowdmax_core.Problem
module Tdp = Crowdmax_core.Tdp
module Allocation = Crowdmax_core.Allocation
module Heuristics = Crowdmax_core.Heuristics
module T = Crowdmax_tournament.Tournament
module E = Crowdmax_runtime.Engine
module S = Crowdmax_selection.Selection
module Platform = Crowdmax_crowd.Platform
module Rwl = Crowdmax_crowd.Rwl
module Worker = Crowdmax_crowd.Worker
module Worker_pool = Crowdmax_crowd.Worker_pool
module Rng = Crowdmax_util.Rng

let tc = Alcotest.test_case
let check_int = Alcotest.check Alcotest.int
let check_ints = Alcotest.check Alcotest.(list int)
let mturk = Model.paper_mturk

let tdp c0 b = Tdp.solve (Problem.create ~elements:c0 ~budget:b ~latency:mturk)

(* Sec. 6.5: "tDP produces the same allocation, (2250, 1225), for any
   budget available, after 4000 questions, i.e., tDP only uses 3475". *)
let test_paper_654_allocation () =
  List.iter
    (fun b ->
      let s = tdp 500 b in
      check_ints
        (Printf.sprintf "allocation at b=%d" b)
        [ 2250; 1225 ]
        (Allocation.round_budgets s.Tdp.allocation);
      check_int "questions used" 3475 s.Tdp.questions_used)
    [ 4000; 8000; 16000; 32000 ]

(* Sec. 6.4: "for 250 elements, uHF generates allocation
   (1000, 1000, 1000, 1000), while tDP generates allocation (884, 465)". *)
let test_paper_644_allocations () =
  check_ints "tDP at c0=250 b=4000" [ 884; 465 ]
    (Allocation.round_budgets (tdp 250 4000).Tdp.allocation);
  check_ints "uHF at c0=250 b=4000"
    [ 1000; 1000; 1000; 1000 ]
    (Allocation.round_budgets (Heuristics.uhf ~elements:250 ~budget:4000))

(* Fig. 14(b) limit points under L = 239 + 0.06 q^p. *)
let test_fig14b_limit_points () =
  let used p b =
    (Tdp.solve
       (Problem.create ~elements:500 ~budget:b
          ~latency:(Model.power ~delta:239.0 ~alpha:0.06 ~p)))
      .Tdp.questions_used
  in
  check_int "p=1.4 limit" 797 (used 1.4 16000);
  check_int "p=1.8 limit" 565 (used 1.8 16000)

(* Fig. 2 / Fig. 3 / Fig. 5 tournament-graph arithmetic. *)
let test_paper_graph_arithmetic () =
  check_int "G_T(20,5)" 30 (T.questions 20 5);
  check_int "G_T(24,5)" 46 (T.questions 24 5);
  check_int "Q(100,25)" 150 (T.questions 100 25);
  check_int "Q(50,25)" 25 (T.questions 50 25);
  check_int "choose2 500" 124750 (Problem.max_useful_budget ~elements:500);
  check_int "choose2 1000" 499500 (Problem.max_useful_budget ~elements:1000)

(* Sec. 5.1 worked example, all four heuristics. *)
let test_paper_51_heuristics () =
  let budgets h = Allocation.round_budgets (h ~elements:24 ~budget:51) in
  check_ints "HE" [ 12; 6; 33 ] (budgets Heuristics.he);
  check_ints "HF" [ 44; 4; 2; 1 ] (budgets Heuristics.hf);
  check_ints "uHE" [ 17; 17; 17 ] (budgets Heuristics.uhe);
  check_ints "uHF" [ 13; 13; 13; 12 ] (budgets Heuristics.uhf)

(* Sec. 2.2 example: with L = 100 + q, (40,8,1) costs 308 and
   (40,20,5,1) costs 360; the optimum at b=108 is 305 via (40,10,1). *)
let test_paper_22_example () =
  let l = Model.linear ~delta:100.0 ~alpha:1.0 in
  let s = Tdp.solve (Problem.create ~elements:40 ~budget:108 ~latency:l) in
  Alcotest.check (Alcotest.float 1e-9) "optimal latency" 305.0 s.Tdp.latency;
  check_ints "optimal sequence" [ 40; 10; 1 ] s.Tdp.sequence;
  Alcotest.check (Alcotest.float 1e-9) "(40,8,1) = 308" 308.0
    (Allocation.predicted_latency (Allocation.of_count_sequence [ 40; 8; 1 ]) l);
  Alcotest.check (Alcotest.float 1e-9) "(40,20,5,1) = 360" 360.0
    (Allocation.predicted_latency
       (Allocation.of_count_sequence [ 40; 20; 5; 1 ])
       l)

(* Engine aggregates, pinned bit-for-bit.

   Each line below is the IEEE-754 hex (Int64.bits_of_float) of every
   statistical field of an [Engine.replicate] aggregate, captured from
   the engine BEFORE the deadline/straggler machinery and the
   majority-vote tie fix landed. The default config ([Wait_all] +
   [Drop]) must keep reproducing them exactly, for any [jobs]: that is
   the guarantee that the new code paths are truly dormant by default.
   The simulated configs use odd vote counts (3, 5), so the even-vote
   tie-break fix cannot perturb them either.

   Field order: mean, stddev, median, p95 latency; singleton, correct
   rate; mean questions, mean rounds. *)
let golden_aggregates =
  [
    ( "oracle_tournament",
      `Oracle, `Tournament, 40, 200, 1, 16,
      [ "407e44cccccccccf"; "3d48c97ef43f7248"; "407e44cccccccccc";
        "407e44cccccccccc"; "3ff0000000000000"; "3ff0000000000000";
        "405a400000000000"; "4000000000000000" ] );
    ( "oracle_ct25",
      `Oracle, `Ct25, 30, 300, 7, 12,
      [ "407e233333333331"; "3d491132de9a584c"; "407e233333333334";
        "407e233333333334"; "3ff0000000000000"; "3ff0000000000000";
        "4051800000000000"; "4000000000000000" ] );
    ( "simulated_rwl",
      `Simulated, `Tournament, 30, 200, 5, 10,
      [ "4080cf7acd12537d"; "40355634e6725332"; "4080db8e8444bb7a";
        "40817713733e804e"; "3ff0000000000000"; "3fe3333333333333";
        "4051800000000000"; "4000000000000000" ] );
    ( "simulated_pool",
      `Pool, `Tournament, 25, 150, 9, 8,
      [ "4080f108f15004ac"; "404bdfdf25ca4a80"; "408033bda5016482";
        "408389add526ce15"; "3ff0000000000000"; "3fec000000000000";
        "404b000000000000"; "4000000000000000" ] );
  ]

let golden_source = function
  | `Oracle -> E.Oracle
  | `Simulated ->
      E.Simulated
        {
          platform = Platform.create ();
          rwl = { Rwl.votes = 3; error = Worker.Uniform 0.15 };
        }
  | `Pool ->
      let pool =
        Worker_pool.create (Rng.create 4242) ~workers:40 ~good_fraction:0.8
          ~good_accuracy:0.92 ~bad_accuracy:0.55
      in
      E.Simulated_pool { platform = Platform.create (); pool; votes = 5 }

let test_engine_aggregate_hex () =
  List.iter
    (fun (name, src, sel, elements, budget, seed, runs, hex) ->
      let sol = Tdp.solve (Problem.create ~elements ~budget ~latency:mturk) in
      let selection =
        match sel with `Tournament -> S.tournament | `Ct25 -> S.ct25
      in
      List.iter
        (fun jobs ->
          let cfg =
            E.config ~source:(golden_source src)
              ~allocation:sol.Tdp.allocation ~selection ~latency_model:mturk ()
          in
          (* Metrics collection must be invisible to the aggregates: the
             plain path and the metrics-enabled path both have to keep
             reproducing the pinned pre-observability hex. *)
          List.iter
            (fun (label, a) ->
              let got =
                List.map
                  (fun v -> Printf.sprintf "%Lx" (Int64.bits_of_float v))
                  [ a.E.mean_latency; a.E.stddev_latency; a.E.median_latency;
                    a.E.p95_latency; a.E.singleton_rate; a.E.correct_rate;
                    a.E.mean_questions; a.E.mean_rounds ]
              in
              Alcotest.check
                Alcotest.(list string)
                (Printf.sprintf "%s (jobs=%d, %s)" name jobs label)
                hex got)
            [
              ("metrics off", E.replicate ~jobs ~runs ~seed cfg ~elements);
              ( "metrics on",
                fst (E.replicate_with_metrics ~jobs ~runs ~seed cfg ~elements)
              );
            ])
        [ 1; 4 ])
    golden_aggregates

(* Adaptive aggregates with the default Off re-fit policy, pinned
   bit-for-bit.

   The oracle rows were captured from the adaptive runtime BEFORE the
   closed-loop (observe -> re-fit -> re-solve) machinery landed: with
   [refit = Off] the controller must consume the exact historical rng
   draw sequence, so these hexes are the guarantee the closed loop is
   truly dormant by default. The simulated row pins the (new)
   platform-driven path at its first-run values, for any [jobs] — the
   ISSUE 9 acceptance pin for [--refit off]. Field order as above. *)
let adaptive_golden_aggregates =
  [
    ( "adaptive_oracle_a",
      `Oracle, 40, 200, 31, 12,
      [ "407e44cccccccccf"; "3d491132de9a584c"; "407e44cccccccccc";
        "407e44cccccccccc"; "3ff0000000000000"; "3ff0000000000000";
        "405a400000000000"; "4000000000000000" ] );
    ( "adaptive_oracle_b",
      `Oracle, 25, 400, 33, 10,
      [ "4070100000000000"; "0"; "4070100000000000";
        "4070100000000000"; "3ff0000000000000"; "3ff0000000000000";
        "4072c00000000000"; "3ff0000000000000" ] );
    ( "adaptive_simulated",
      `Simulated, 30, 200, 35, 8,
      [ "408079a06098a2eb"; "4045b1af0f95bf0d"; "40803b605ef8384a";
        "40828f3e96e25e55"; "3ff0000000000000"; "3fec000000000000";
        "4051800000000000"; "4000000000000000" ] );
  ]

let test_adaptive_aggregate_hex () =
  let module A = Crowdmax_runtime.Adaptive in
  List.iter
    (fun (name, src, elements, budget, seed, runs, hex) ->
      let problem = Problem.create ~elements ~budget ~latency:mturk in
      List.iter
        (fun jobs ->
          let a =
            A.replicate ~jobs ~source:(golden_source src) ~refit:A.Off ~runs
              ~seed ~problem ~selection:S.tournament ()
          in
          let e = a.A.engine_aggregate in
          let got =
            List.map
              (fun v -> Printf.sprintf "%Lx" (Int64.bits_of_float v))
              [ e.E.mean_latency; e.E.stddev_latency; e.E.median_latency;
                e.E.p95_latency; e.E.singleton_rate; e.E.correct_rate;
                e.E.mean_questions; e.E.mean_rounds ]
          in
          Alcotest.check
            Alcotest.(list string)
            (Printf.sprintf "%s (jobs=%d)" name jobs)
            hex got)
        [ 1; 4 ])
    adaptive_golden_aggregates

let test_metrics_snapshot_deterministic () =
  (* The merged simulated-metric document is part of the determinism
     contract: identical across repeat invocations and for any jobs. *)
  let module M = Crowdmax_obs.Metrics in
  let cfg =
    E.config ~source:(golden_source `Simulated)
      ~allocation:(tdp 30 200).Tdp.allocation ~selection:S.tournament
      ~latency_model:mturk ()
  in
  let snap jobs =
    M.simulated_only
      (snd (E.replicate_with_metrics ~jobs ~runs:10 ~seed:5 cfg ~elements:30))
  in
  let reference = snap 1 in
  Alcotest.check Alcotest.bool "non-empty" true (reference <> []);
  List.iter
    (fun jobs ->
      Alcotest.check Alcotest.bool
        (Printf.sprintf "jobs=%d snapshot identical" jobs)
        true
        (M.equal reference (snap jobs)))
    [ 1; 2; 4 ]

let suite =
  [
    ( "golden",
      [
        tc "Sec 6.5 budget limiting" `Quick test_paper_654_allocation;
        tc "Sec 6.4 allocations" `Quick test_paper_644_allocations;
        tc "Fig 14(b) limit points" `Quick test_fig14b_limit_points;
        tc "tournament arithmetic" `Quick test_paper_graph_arithmetic;
        tc "Sec 5.1 heuristics" `Quick test_paper_51_heuristics;
        tc "Sec 2.2 example" `Quick test_paper_22_example;
        tc "adaptive Off-policy aggregates bit-identical to goldens" `Quick
          test_adaptive_aggregate_hex;
        tc "engine aggregates bit-identical to pre-deadline engine" `Quick
          test_engine_aggregate_hex;
        tc "metrics snapshot deterministic across jobs" `Quick
          test_metrics_snapshot_deterministic;
      ] );
  ]
