module G = Crowdmax_crowd.Ground_truth
module Rng = Crowdmax_util.Rng

let tc = Alcotest.test_case
let check_int = Alcotest.check Alcotest.int
let check_bool = Alcotest.check Alcotest.bool

let test_random_is_permutation () =
  let rng = Rng.create 3 in
  let t = G.random rng 20 in
  check_int "size" 20 (G.size t);
  let seen = Array.make 20 false in
  for e = 0 to 19 do
    seen.(G.rank t e) <- true
  done;
  Array.iter (fun s -> check_bool "all ranks present" true s) seen

let test_of_ranks_roundtrip () =
  let t = G.of_ranks [| 2; 0; 1 |] in
  check_int "rank of 0" 2 (G.rank t 0);
  check_int "rank of 1" 0 (G.rank t 1);
  check_int "max element" 0 (G.max_element t)

let test_of_ranks_validation () =
  Alcotest.check_raises "dup" (Invalid_argument "Ground_truth: ranks must form a permutation")
    (fun () -> ignore (G.of_ranks [| 0; 0; 1 |]));
  Alcotest.check_raises "range" (Invalid_argument "Ground_truth: ranks must form a permutation")
    (fun () -> ignore (G.of_ranks [| 0; 3; 1 |]))

let test_of_ranks_copies_input () =
  let ranks = [| 0; 1; 2 |] in
  let t = G.of_ranks ranks in
  ranks.(0) <- 2;
  check_int "not aliased" 0 (G.rank t 0)

let test_better () =
  let t = G.of_ranks [| 1; 0; 2 |] in
  check_int "2 beats 0" 2 (G.better t 0 2);
  check_int "0 beats 1" 0 (G.better t 0 1);
  Alcotest.check_raises "same" (Invalid_argument "Ground_truth.better: same element")
    (fun () -> ignore (G.better t 1 1))

let test_better_consistent_with_compare () =
  let rng = Rng.create 5 in
  let t = G.random rng 15 in
  for a = 0 to 14 do
    for b = 0 to 14 do
      if a <> b then begin
        let w = G.better t a b in
        check_bool "consistent" true
          (if w = a then G.compare_elements t a b > 0
           else G.compare_elements t a b < 0)
      end
    done
  done

let test_max_element () =
  let rng = Rng.create 7 in
  let t = G.random rng 30 in
  let m = G.max_element t in
  for e = 0 to 29 do
    if e <> m then check_int "max beats all" m (G.better t m e)
  done

let test_sorted_desc () =
  let rng = Rng.create 9 in
  let t = G.random rng 25 in
  let order = G.sorted_desc t in
  check_int "starts at max" (G.max_element t) order.(0);
  for i = 0 to 23 do
    check_bool "descending ranks" true (G.rank t order.(i) > G.rank t order.(i + 1))
  done

let test_with_values_ranked_by_value () =
  let rng = Rng.create 11 in
  let t = G.with_values rng 50 ~lo:1000.0 ~hi:100000.0 in
  for a = 0 to 49 do
    for b = 0 to 49 do
      if a <> b && G.rank t a > G.rank t b then
        check_bool "higher rank >= value order" true (G.value t a >= G.value t b)
    done
  done;
  for e = 0 to 49 do
    let v = G.value t e in
    check_bool "value in range" true (v >= 1000.0 && v <= 100000.0)
  done

let test_with_values_validation () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "bad range" (Invalid_argument "Ground_truth.with_values: bad range")
    (fun () -> ignore (G.with_values rng 5 ~lo:0.0 ~hi:10.0))

let test_rank_out_of_range () =
  let t = G.of_ranks [| 0; 1 |] in
  Alcotest.check_raises "range" (Invalid_argument "Ground_truth.rank: out of range")
    (fun () -> ignore (G.rank t 2))

let suite =
  [
    ( "ground_truth",
      [
        tc "random is permutation" `Quick test_random_is_permutation;
        tc "of_ranks roundtrip" `Quick test_of_ranks_roundtrip;
        tc "of_ranks validation" `Quick test_of_ranks_validation;
        tc "of_ranks copies" `Quick test_of_ranks_copies_input;
        tc "better" `Quick test_better;
        tc "better vs compare" `Quick test_better_consistent_with_compare;
        tc "max element" `Quick test_max_element;
        tc "sorted desc" `Quick test_sorted_desc;
        tc "with_values ordering" `Quick test_with_values_ranked_by_value;
        tc "with_values validation" `Quick test_with_values_validation;
        tc "rank out of range" `Quick test_rank_out_of_range;
      ] );
  ]
